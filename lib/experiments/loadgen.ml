(** Open-loop Poisson load generator (see the interface for the
    discipline and the honesty argument).

    One rate step draws its whole arrival schedule from a seeded
    exponential stream — the next arrival is [prev + Exp(rate)],
    never "when the previous request came back" — then sleeps to each
    scheduled instant and submits through {!Svc.recompile_async}.  A
    full queue sheds the request (counted, not retried): the generator
    must never block, or the offered rate would silently degrade to the
    service's capacity and the percentiles would lie.

    Latency is measured against the {e scheduled} arrival, not the
    actual submission, so generator lag on an overloaded box is charged
    to the service like any other queueing delay (the anti-coordinated-
    omission rule). *)

module Ir = Nullelim_ir.Ir
module Arch = Nullelim_arch.Arch
module Config = Nullelim_jit.Config
module Svc = Nullelim_svc.Svc
module Tier = Nullelim_tier.Tier
module Metrics = Nullelim_obs.Metrics
module Recorder = Nullelim_obs.Recorder
module Json = Nullelim_obs.Obs_json
module W = Nullelim_workloads.Workload
module Registry = Nullelim_workloads.Registry

type calibration = {
  cal_jobs : int;
  cal_mean_seconds : float;
  cal_base_rate : float;
}

type tenant_row = {
  tn_tenant : int;
  tn_offered : int;
  tn_completed : int;
  tn_shed : int;
}

type rate_row = {
  lr_multiplier : float;
  lr_offered_rate : float;
  lr_offered : int;
  lr_completed : int;
  lr_shed : int;
  lr_elapsed : float;
  lr_throughput : float;
  lr_mean_ms : float;
  lr_p50_ms : float;
  lr_p90_ms : float;
  lr_p99_ms : float;
  lr_p999_ms : float;
  lr_hist_p99_ms : float;
  lr_tenants : tenant_row list;
}

type overhead = {
  ov_ns_per_event : float;
  ov_enabled_seconds : float;
  ov_disabled_seconds : float;
  ov_fraction : float;
}

type t = {
  lg_domains : int;
  lg_queue_capacity : int;
  lg_duration : float;
  lg_seed : int;
  lg_tenants : int;
  lg_tenant_cap : int;
  lg_calibration : calibration;
  lg_rows : rate_row list;
  lg_saturation_throughput : float;
  lg_overhead : overhead option;
}

let default_multipliers = [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

(* ------------------------------------------------------------------ *)
(* Corpus and calibration                                              *)
(* ------------------------------------------------------------------ *)

let corpus () : Svc.job list =
  Ir.reset_sites ();
  List.map
    (fun (w : W.t) ->
      Svc.job ~config:Config.new_full ~arch:Arch.ia32_windows
        (w.W.build ~scale:1))
    (Registry.all ())

let calibrate (jobs : Svc.job list) : calibration =
  if jobs = [] then invalid_arg "Loadgen.calibrate: empty corpus";
  let outcomes = Svc.compile_serial jobs in
  let total =
    List.fold_left (fun acc o -> acc +. o.Svc.oc_seconds) 0. outcomes
  in
  let mean = max 1e-9 (total /. float_of_int (List.length jobs)) in
  {
    cal_jobs = List.length jobs;
    cal_mean_seconds = mean;
    cal_base_rate = 1. /. mean;
  }

(* ------------------------------------------------------------------ *)
(* One rate step                                                       *)
(* ------------------------------------------------------------------ *)

(* exact quantile of a sorted array: the ceil(q*n)-th order statistic,
   matching Metrics.percentile's rank rule *)
let exact_q (sorted : float array) q =
  let n = Array.length sorted in
  if n = 0 then nan
  else
    let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
    sorted.(rank - 1)

let latency_buckets = Metrics.log_buckets ~lo:1e-5 ~hi:100. ~per_decade:10

let run_rate ~svc ~(jobs : Svc.job array) ~multiplier ~rate ~duration ~seed
    ~max_requests ~tenants : rate_row =
  let st = Random.State.make [| seed; int_of_float (multiplier *. 1000.) |] in
  let n =
    min max_requests (max 8 (int_of_float ((rate *. duration) +. 0.5)))
  in
  let tenants = max 1 tenants in
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:latency_buckets "loadgen_latency" in
  (* per-tenant closed accounting: every offered request ends up in
     exactly one of completed/shed, per tenant — the structural gate
     checks the identity on each row *)
  let t_offered = Array.make tenants 0 in
  let t_completed = Array.make tenants 0 in
  let t_shed = Array.make tenants 0 in
  let t0 = Unix.gettimeofday () in
  let next = ref t0 in
  let inflight = ref [] in
  let shed = ref 0 in
  for k = 0 to n - 1 do
    let u = Random.State.float st 1.0 in
    next := !next +. (-.log (1. -. u) /. rate);
    let now = Unix.gettimeofday () in
    if !next > now then Unix.sleepf (!next -. now);
    (* tenants interleave round-robin, so every tenant offers load at
       every rate and the per-tenant series are comparable *)
    let tenant = k mod tenants in
    t_offered.(tenant) <- t_offered.(tenant) + 1;
    match Svc.recompile_async svc ~tenant jobs.(k mod Array.length jobs) with
    | Some fut -> inflight := (tenant, !next, fut) :: !inflight
    | None ->
      incr shed;
      t_shed.(tenant) <- t_shed.(tenant) + 1
  done;
  (* drain: open-loop submission is over, completions are awaited so
     every accepted request contributes a latency sample *)
  let lats =
    List.rev_map
      (fun (tenant, scheduled, fut) ->
        let oc = Svc.await fut in
        t_completed.(tenant) <- t_completed.(tenant) + 1;
        let l = max 0. (oc.Svc.oc_done_at -. scheduled) in
        Metrics.observe h l;
        l)
      !inflight
  in
  let elapsed = max 1e-9 (Unix.gettimeofday () -. t0) in
  let sorted = Array.of_list lats in
  Array.sort compare sorted;
  let completed = Array.length sorted in
  let mean =
    if completed = 0 then nan
    else Array.fold_left ( +. ) 0. sorted /. float_of_int completed
  in
  let ms x = 1000. *. x in
  {
    lr_multiplier = multiplier;
    lr_offered_rate = rate;
    lr_offered = n;
    lr_completed = completed;
    lr_shed = !shed;
    lr_elapsed = elapsed;
    lr_throughput = float_of_int completed /. elapsed;
    lr_mean_ms = ms mean;
    lr_p50_ms = ms (exact_q sorted 0.5);
    lr_p90_ms = ms (exact_q sorted 0.9);
    lr_p99_ms = ms (exact_q sorted 0.99);
    lr_p999_ms = ms (exact_q sorted 0.999);
    lr_hist_p99_ms = ms (Metrics.percentile m "loadgen_latency" 0.99);
    lr_tenants =
      List.init tenants (fun i ->
          {
            tn_tenant = i;
            tn_offered = t_offered.(i);
            tn_completed = t_completed.(i);
            tn_shed = t_shed.(i);
          });
  }

(* ------------------------------------------------------------------ *)
(* Recorder overhead                                                   *)
(* ------------------------------------------------------------------ *)

let fuel = 1_000_000_000

(* one steady-state pass: promote-and-stabilize a mid-size workload on
   the synchronous tier manager — the path whose hot loops feed the
   recorder from the channel, cache and tier layers *)
let tiered_pass () =
  Ir.reset_sites ();
  let w =
    match Registry.find "huffman" with
    | Some w -> w
    | None -> List.hd (Registry.all ())
  in
  let p = w.W.build ~scale:1 in
  let cfg = { Config.new_full with Config.promote_calls = 2 } in
  let t = Tier.create ~config:cfg ~arch:Arch.ia32_windows p in
  for _ = 1 to 6 do
    ignore (Tier.run ~fuel t [])
  done;
  Tier.drain t

let median l =
  let a = Array.of_list l in
  Array.sort compare a;
  a.(Array.length a / 2)

let measure_overhead ?(rounds = 3) () : overhead =
  let g = Recorder.global in
  let was = Recorder.is_enabled g in
  Fun.protect
    ~finally:(fun () -> Recorder.set_enabled g was)
    (fun () ->
      (* tight-loop cost of one record *)
      let r = Recorder.create ~capacity:1024 () in
      let iters = 1_000_000 in
      let t0 = Unix.gettimeofday () in
      for i = 0 to iters - 1 do
        Recorder.record ~a:i r Recorder.Mark
      done;
      let ns = 1e9 *. (Unix.gettimeofday () -. t0) /. float_of_int iters in
      (* alternating on/off passes of the tiered loop; medians cancel
         the occasional GC/scheduler outlier *)
      let on = ref [] and off = ref [] in
      tiered_pass () (* warm-up, not timed *);
      for _ = 1 to max 1 rounds do
        Recorder.set_enabled g false;
        let t0 = Unix.gettimeofday () in
        tiered_pass ();
        off := (Unix.gettimeofday () -. t0) :: !off;
        Recorder.set_enabled g true;
        let t0 = Unix.gettimeofday () in
        tiered_pass ();
        on := (Unix.gettimeofday () -. t0) :: !on
      done;
      let on = median !on and off = median !off in
      {
        ov_ns_per_event = ns;
        ov_enabled_seconds = on;
        ov_disabled_seconds = off;
        ov_fraction = (on -. off) /. max 1e-9 off;
      })

(* ------------------------------------------------------------------ *)
(* The sweep                                                           *)
(* ------------------------------------------------------------------ *)

let sweep ?domains ?(queue_capacity = 64) ?(duration = 2.0) ?(seed = 42)
    ?(multipliers = default_multipliers) ?(max_requests = 400)
    ?(overhead = false) ?(tenants = 1) ?(tenant_cap = 0) ?metrics ?recorder
    () : t =
  let jobs = corpus () in
  let cal = calibrate jobs in
  let jobs = Array.of_list jobs in
  let multipliers = List.sort compare multipliers in
  let tenants = max 1 tenants in
  let domains =
    match domains with Some d -> max 1 d | None -> Svc.default_domains ()
  in
  let rows =
    Svc.with_service ~domains ~queue_capacity ?metrics ?recorder ~tenant_cap
      (fun svc ->
        List.map
          (fun multiplier ->
            let rate = max 0.1 (multiplier *. cal.cal_base_rate) in
            run_rate ~svc ~jobs ~multiplier ~rate ~duration ~seed
              ~max_requests ~tenants)
          multipliers)
  in
  let saturation =
    List.fold_left (fun acc r -> max acc r.lr_throughput) 0. rows
  in
  {
    lg_domains = domains;
    lg_queue_capacity = queue_capacity;
    lg_duration = duration;
    lg_seed = seed;
    lg_tenants = tenants;
    lg_tenant_cap = max 0 tenant_cap;
    lg_calibration = cal;
    lg_rows = rows;
    lg_saturation_throughput = saturation;
    lg_overhead = (if overhead then Some (measure_overhead ()) else None);
  }

(* ------------------------------------------------------------------ *)
(* Gates                                                               *)
(* ------------------------------------------------------------------ *)

let check_rows (rows : rate_row list) : (unit, string list) result =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  if rows = [] then err "no rate rows";
  let running_max = ref 0. in
  List.iter
    (fun r ->
      if r.lr_offered <= 0 then
        err "rate %.2fx: no requests offered" r.lr_multiplier;
      if r.lr_completed + r.lr_shed <> r.lr_offered then
        err "rate %.2fx: %d completed + %d shed <> %d offered"
          r.lr_multiplier r.lr_completed r.lr_shed r.lr_offered;
      (* throughput must climb to saturation and then plateau; a dip
         >15% below the best seen so far is a scheduling pathology *)
      if r.lr_throughput < 0.85 *. !running_max then
        err
          "rate %.2fx: throughput %.2f/s dropped >15%% below the %.2f/s \
           already reached at a lower rate"
          r.lr_multiplier r.lr_throughput !running_max;
      running_max := max !running_max r.lr_throughput;
      let finite x = Float.is_finite x in
      if
        r.lr_completed > 0
        && finite r.lr_p50_ms && finite r.lr_p99_ms && finite r.lr_p999_ms
        && not (r.lr_p50_ms <= r.lr_p99_ms && r.lr_p99_ms <= r.lr_p999_ms)
      then
        err "rate %.2fx: percentiles not monotone (p50 %.2f p99 %.2f p999 %.2f)"
          r.lr_multiplier r.lr_p50_ms r.lr_p99_ms r.lr_p999_ms;
      (* per-tenant closed accounting, and the tenant rows must tie out
         against the row totals *)
      List.iter
        (fun tn ->
          if tn.tn_completed + tn.tn_shed <> tn.tn_offered then
            err
              "rate %.2fx tenant %d: %d completed + %d shed <> %d offered"
              r.lr_multiplier tn.tn_tenant tn.tn_completed tn.tn_shed
              tn.tn_offered)
        r.lr_tenants;
      if r.lr_tenants <> [] then begin
        let sum f = List.fold_left (fun a tn -> a + f tn) 0 r.lr_tenants in
        if sum (fun tn -> tn.tn_offered) <> r.lr_offered then
          err "rate %.2fx: tenant offered counts don't sum to the row total"
            r.lr_multiplier;
        if sum (fun tn -> tn.tn_shed) <> r.lr_shed then
          err "rate %.2fx: tenant shed counts don't sum to the row total"
            r.lr_multiplier
      end)
    rows;
  if !errs = [] then Ok () else Error (List.rev !errs)

(* The machine-independent stable quantity: how many mean compile times
   does a p99 request wait end-to-end at the lowest offered rate. *)
let normalized_p99 (t : t) : float =
  match t.lg_rows with
  | [] -> nan
  | r :: _ -> r.lr_p99_ms /. 1000. /. t.lg_calibration.cal_mean_seconds

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let schema = "nullelim-loadgen/1"
let schema_version = 1

let tenant_row_json (tn : tenant_row) : Json.t =
  Json.Obj
    [
      ("tenant", Json.Int tn.tn_tenant);
      ("offered", Json.Int tn.tn_offered);
      ("completed", Json.Int tn.tn_completed);
      ("shed", Json.Int tn.tn_shed);
    ]

let row_json (r : rate_row) : Json.t =
  Json.Obj
    [
      ("rate_multiplier", Json.Float r.lr_multiplier);
      ("offered_rate_per_sec", Json.Float r.lr_offered_rate);
      ("offered", Json.Int r.lr_offered);
      ("completed", Json.Int r.lr_completed);
      ("shed", Json.Int r.lr_shed);
      ("elapsed_seconds", Json.Float r.lr_elapsed);
      ("throughput_per_sec", Json.Float r.lr_throughput);
      ("mean_ms", Json.Float r.lr_mean_ms);
      ("p50_ms", Json.Float r.lr_p50_ms);
      ("p90_ms", Json.Float r.lr_p90_ms);
      ("p99_ms", Json.Float r.lr_p99_ms);
      ("p999_ms", Json.Float r.lr_p999_ms);
      ("hist_p99_ms", Json.Float r.lr_hist_p99_ms);
      ("tenants", Json.List (List.map tenant_row_json r.lr_tenants));
    ]

let overhead_json (o : overhead) : Json.t =
  Json.Obj
    [
      ("ns_per_event", Json.Float o.ov_ns_per_event);
      ("enabled_seconds", Json.Float o.ov_enabled_seconds);
      ("disabled_seconds", Json.Float o.ov_disabled_seconds);
      ("fraction", Json.Float o.ov_fraction);
    ]

let to_json (t : t) : Json.t =
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ("schema_version", Json.Int schema_version);
       ("domains", Json.Int t.lg_domains);
       ("queue_capacity", Json.Int t.lg_queue_capacity);
       ("duration_seconds", Json.Float t.lg_duration);
       ("seed", Json.Int t.lg_seed);
       ("tenants", Json.Int t.lg_tenants);
       ("tenant_cap", Json.Int t.lg_tenant_cap);
       ( "calibration",
         Json.Obj
           [
             ("jobs", Json.Int t.lg_calibration.cal_jobs);
             ( "mean_compile_seconds",
               Json.Float t.lg_calibration.cal_mean_seconds );
             ("base_rate_per_sec", Json.Float t.lg_calibration.cal_base_rate);
           ] );
       ("rows", Json.List (List.map row_json t.lg_rows));
       ("saturation_throughput_per_sec", Json.Float t.lg_saturation_throughput);
       ("normalized_p99", Json.Float (normalized_p99 t));
     ]
    @
    match t.lg_overhead with
    | Some o -> [ ("recorder_overhead", overhead_json o) ]
    | None -> [])

let num = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

let validate (j : Json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let* () =
    match Json.member "schema" j with
    | Some (Json.Str s) when s = schema -> Ok ()
    | Some (Json.Str s) -> Error (Printf.sprintf "unknown schema %S" s)
    | _ -> Error "missing field \"schema\""
  in
  let* () =
    match Json.member "schema_version" j with
    | Some (Json.Int v) when v = schema_version -> Ok ()
    | Some (Json.Int v) ->
      Error (Printf.sprintf "unsupported schema_version %d" v)
    | _ -> Error "missing field \"schema_version\""
  in
  let* () =
    match Json.member "calibration" j with
    | Some cal -> (
      match Option.bind (Json.member "mean_compile_seconds" cal) num with
      | Some m when m > 0. -> Ok ()
      | Some _ -> Error "calibration: mean_compile_seconds must be positive"
      | None -> Error "calibration: missing mean_compile_seconds")
    | None -> Error "missing field \"calibration\""
  in
  let* () =
    match Json.member "rows" j with
    | Some (Json.List (_ :: _ as rows)) ->
      List.fold_left
        (fun acc row ->
          let* () = acc in
          let* () =
            List.fold_left
              (fun acc name ->
                let* () = acc in
                match Option.bind (Json.member name row) num with
                | Some _ -> Ok ()
                | None ->
                  Error (Printf.sprintf "row: missing numeric field %S" name))
              (Ok ())
              [
                "rate_multiplier"; "offered_rate_per_sec"; "offered";
                "completed"; "shed"; "throughput_per_sec"; "p50_ms";
                "p99_ms"; "p999_ms";
              ]
          in
          (* "tenants" is additive (absent in pre-tenancy documents);
             when present, each entry must close its accounting *)
          match Json.member "tenants" row with
          | None -> Ok ()
          | Some (Json.List tns) ->
            List.fold_left
              (fun acc tn ->
                let* () = acc in
                match
                  ( Json.member "tenant" tn,
                    Json.member "offered" tn,
                    Json.member "completed" tn,
                    Json.member "shed" tn )
                with
                | Some (Json.Int t), Some (Json.Int o), Some (Json.Int c),
                  Some (Json.Int s) ->
                  if c + s <> o then
                    Error
                      (Printf.sprintf
                         "tenant %d: %d completed + %d shed <> %d offered"
                         t c s o)
                  else Ok ()
                | _ ->
                  Error "tenant row: missing tenant/offered/completed/shed")
              (Ok ()) tns
          | Some _ -> Error "row: tenants must be a list")
        (Ok ()) rows
    | Some (Json.List []) -> Error "rows must be non-empty"
    | _ -> Error "missing field \"rows\""
  in
  let* () =
    match Option.bind (Json.member "saturation_throughput_per_sec" j) num with
    | Some _ -> Ok ()
    | None -> Error "missing field \"saturation_throughput_per_sec\""
  in
  match Option.bind (Json.member "normalized_p99" j) num with
  | Some _ -> Ok ()
  | None -> Error "missing field \"normalized_p99\""

(* ------------------------------------------------------------------ *)
(* Baseline gate                                                       *)
(* ------------------------------------------------------------------ *)

let check_against_baseline ?(factor = 3.0) ~(baseline : Json.t) (t : t) :
    (string list, string list) result =
  let fresh = normalized_p99 t in
  match Option.bind (Json.member "normalized_p99" baseline) num with
  | None -> Error [ "baseline document has no \"normalized_p99\" member" ]
  | Some base ->
    if not (Float.is_finite fresh) then
      Error [ "fresh sweep produced no finite normalized p99" ]
    else if fresh > factor *. base then
      Error
        [
          Printf.sprintf
            "normalized p99 regressed: %.3f mean-compiles vs baseline %.3f \
             (gate %.1fx)"
            fresh base factor;
        ]
    else
      let drift = ref [] in
      if fresh *. factor < base then
        drift :=
          Printf.sprintf
            "normalized p99 improved to %.3f (baseline %.3f) — consider \
             refreshing"
            fresh base
          :: !drift;
      (match Json.member "rows" baseline with
      | Some (Json.List brows)
        when List.length brows <> List.length t.lg_rows ->
        drift :=
          Printf.sprintf "rate grid changed: %d rows vs baseline %d"
            (List.length t.lg_rows) (List.length brows)
          :: !drift
      | _ -> ());
      Ok (List.rev !drift)
