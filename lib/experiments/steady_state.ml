(** Steady-state tiered-execution benchmark (the tentpole experiment).

    Every workload is driven repeatedly through one {!Tier.t} manager:
    the first run executes the tier-0 entry code (every raw check an
    explicit instruction), promotions install the full phase-1+2
    pipeline function by function at call boundaries, and by the final
    run the process is at its steady state.  Three deterministic
    counters frame the curve per workload:

    - {b tier0}: dynamic explicit checks of a pure tier-0 run — what
      the process pays before any recompilation lands;
    - {b steady}: dynamic explicit checks of the final tiered run;
    - {b full}: dynamic explicit checks running the untiered full
      compile — the floor the tiered manager converges to.

    {e time-to-peak} is the 1-based index of the first run whose
    explicit-check count already equals the steady value.  The headline
    gate: on every workload where the full pipeline eliminates checks
    ([full < tier0]), the steady state must execute strictly fewer
    explicit checks than tier 0 ([steady < tier0]).

    Collection is synchronous (no domains) by default — bit-for-bit
    deterministic, which is what the committed baseline diffs against.
    {!collect} also accepts a running {!Svc.t}; then recompilations
    overlap execution on the pool and the row additionally proves the
    no-stop-the-world property ([ss_awaits = 0]: the serving thread
    polled, never blocked).

    The companion {!forced_deopt} scenario injects a null into a
    promoted function mid-run and records that the hardware trap
    deoptimized {e only} the offending site — the acceptance evidence
    serialized next to the rows in the ["tiered"] document. *)

module Ir = Nullelim_ir.Ir
module B = Nullelim_ir.Ir_builder
module Ir_validate = Nullelim_ir.Ir_validate
module Arch = Nullelim_arch.Arch
module Interp = Nullelim_vm.Interp
module Value = Nullelim_vm.Value
module Config = Nullelim_jit.Config
module Compiler = Nullelim_jit.Compiler
module Svc = Nullelim_svc.Svc
module Tier = Nullelim_tier.Tier
module Decision = Nullelim_obs.Decision
module Json = Nullelim_obs.Obs_json
module W = Nullelim_workloads.Workload
module Registry = Nullelim_workloads.Registry

let default_runs = 12
let fuel = 1_000_000_000

type row = {
  ss_workload : string;
  ss_runs : int;            (** tiered runs driven *)
  ss_time_to_peak : int;    (** first run already at the steady count *)
  ss_tier0 : int;           (** dynamic explicit checks, pure tier 0 *)
  ss_steady : int;          (** dynamic explicit checks, final tiered run *)
  ss_full : int;            (** dynamic explicit checks, untiered full *)
  ss_tier0_calls : int;
  ss_steady_calls : int;
  ss_promotions : int;
  ss_demotions : int;
  ss_deopts : int;
  ss_installs : int;
  ss_submitted : int;
  ss_queue_full : int;
  ss_traps : int;
  ss_awaits : int;          (** serving-thread blocking waits: always 0 *)
  ss_recompile_seconds : float;
      (** pool/wall time of installed recompiles — all of it overlapped
          with execution when a service is attached *)
}

let checks_per_call ~checks ~calls =
  float_of_int checks /. float_of_int (max 1 calls)

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)
(* ------------------------------------------------------------------ *)

let run_once ~arch (p : Ir.program) (cfg : Config.t) : Interp.counters =
  let c = Compiler.compile cfg ~arch p in
  let r = Interp.run ~fuel ~arch c.Compiler.program [] in
  match r.Interp.outcome with
  | Interp.Returned (Some _) -> r.Interp.counters
  | o ->
    failwith
      (Fmt.str "steady-state %s/%s: %a" cfg.Config.name arch.Arch.name
         Interp.pp_outcome o)

let collect ?svc ?(config = Config.new_full) ?(runs = default_runs)
    ~(arch : Arch.t) (w : W.t) : row =
  if runs < 2 then invalid_arg "Steady_state.collect: runs must be >= 2";
  (* site ids restart per workload so the committed numbers do not
     depend on which workloads ran before this one *)
  Ir.reset_sites ();
  let p = w.W.build ~scale:1 in
  let expected = w.W.expected ~scale:1 in
  let tier0 = run_once ~arch p (Config.tier0 config) in
  let full = run_once ~arch p config in
  let t = Tier.create ?svc ~config ~arch p in
  let history = ref [] in
  for i = 1 to runs do
    let r = Tier.run ~fuel t [] in
    (match r.Interp.outcome with
    | Interp.Returned (Some (Value.Vint c)) when c = expected -> ()
    | Interp.Returned (Some _) ->
      failwith
        (Printf.sprintf "steady-state %s: tiered run %d checksum mismatch"
           w.W.name i)
    | o ->
      failwith
        (Fmt.str "steady-state %s: tiered run %d: %a" w.W.name i
           Interp.pp_outcome o));
    history :=
      (r.Interp.counters.Interp.explicit_checks, r.Interp.counters.Interp.calls)
      :: !history
  done;
  Tier.drain t;
  List.iter
    (fun (tier, (c : Compiler.compiled)) ->
      match Compiler.reconcile c with
      | Ok () -> ()
      | Error e ->
        failwith
          (Printf.sprintf "steady-state %s: tier-%d artifact: %s" w.W.name
             tier e))
    (Tier.artifacts t);
  let history = List.rev !history in
  let steady, steady_calls = List.nth history (runs - 1) in
  let time_to_peak =
    let rec first i = function
      | (c, _) :: _ when c = steady -> i
      | _ :: rest -> first (i + 1) rest
      | [] -> runs
    in
    first 1 history
  in
  let s = Tier.stats t in
  {
    ss_workload = w.W.name;
    ss_runs = runs;
    ss_time_to_peak = time_to_peak;
    ss_tier0 = tier0.Interp.explicit_checks;
    ss_steady = steady;
    ss_full = full.Interp.explicit_checks;
    ss_tier0_calls = tier0.Interp.calls;
    ss_steady_calls = steady_calls;
    ss_promotions = s.Tier.st_promotions;
    ss_demotions = s.Tier.st_demotions;
    ss_deopts = s.Tier.st_deopts;
    ss_installs = s.Tier.st_installs;
    ss_submitted = s.Tier.st_submitted;
    ss_queue_full = s.Tier.st_queue_full;
    ss_traps = s.Tier.st_traps;
    ss_awaits = s.Tier.st_awaits;
    ss_recompile_seconds = s.Tier.st_recompile_seconds;
  }

let collect_all ?svc ?config ?runs ~(arch : Arch.t) () : row list =
  List.map (fun w -> collect ?svc ?config ?runs ~arch w) (Registry.all ())

(* ------------------------------------------------------------------ *)
(* The headline gate                                                   *)
(* ------------------------------------------------------------------ *)

(** On every workload where the full pipeline eliminates checks, the
    steady state must execute strictly fewer explicit checks than tier
    0 — and the serving thread must never have blocked. *)
let check_rows (rows : row list) : (unit, string list) result =
  let errs =
    List.concat_map
      (fun r ->
        let e1 =
          if r.ss_full < r.ss_tier0 && r.ss_steady >= r.ss_tier0 then
            [
              Printf.sprintf
                "%s: steady state executes %d explicit checks, tier 0 %d — \
                 tiering never caught up"
                r.ss_workload r.ss_steady r.ss_tier0;
            ]
          else []
        in
        let e2 =
          if r.ss_awaits > 0 then
            [
              Printf.sprintf "%s: serving thread blocked %d times on the pool"
                r.ss_workload r.ss_awaits;
            ]
          else []
        in
        e1 @ e2)
      rows
  in
  if errs = [] then Ok () else Error errs

(* ------------------------------------------------------------------ *)
(* Forced deoptimization evidence                                      *)
(* ------------------------------------------------------------------ *)

type forced_deopt = {
  fd_sites : Ir.site list;       (** raw implicit-eligible sites, in order *)
  fd_trapped : Ir.site;          (** the site whose trap actually fired *)
  fd_deopted : Ir.site list;     (** sites the manager re-materialized *)
  fd_only_offending : bool;      (** [fd_deopted = [fd_trapped]] *)
  fd_demotions : int;
  fd_deopts : int;
  fd_rematerialized : int;       (** explicit-check delta vs the clean tier 2 *)
  fd_reconciled : bool;          (** every artifact's decision log reconciles *)
}

(* [helper a b] dereferences both parameters behind one raw explicit
   check each; [main] calls it in a loop and substitutes null for [b]
   on one late iteration, catching the NPE.  After promotion both
   checks are implicit, so the injected null fires a hardware trap at
   exactly [b]'s site. *)
let forced_program () =
  Ir.reset_sites ();
  let fld_x = { Ir.fname = "x"; foffset = 8; fkind = Ir.Kint } in
  let fld_y = { Ir.fname = "y"; foffset = 16; fkind = Ir.Kint } in
  let cls =
    { Ir.cname = "Cell"; csuper = None; cfields = [ fld_x; fld_y ];
      cmethods = [] }
  in
  let open B in
  let helper =
    let b = create ~name:"helper" ~params:[ "a"; "b" ] () in
    let x = fresh b and y = fresh b and r = fresh b in
    getfield b ~dst:x ~obj:(param b 0) fld_x;
    getfield b ~dst:y ~obj:(param b 1) fld_y;
    emit b (Binop (r, Add, Var x, Var y));
    terminate b (Return (Some (Var r)));
    finish b
  in
  let main =
    let b = create ~name:"main" ~params:[] () in
    let obj = fresh b and nul = fresh b and acc = fresh b and i = fresh b in
    emit b (New_object (obj, cls.Ir.cname));
    putfield b ~obj fld_x (Cint 2);
    putfield b ~obj fld_y (Cint 3);
    emit b (Move (nul, Cnull));
    emit b (Move (acc, Cint 0));
    count_do b ~v:i ~from:(Cint 0) ~limit:(Cint 12) (fun b ->
        let arg = fresh b and r = fresh b in
        emit b (Move (arg, Var obj));
        if_then b (Ir.Eq, Ir.Var i, Ir.Cint 8)
          ~then_:(fun b -> emit b (Move (arg, Var nul)))
          ();
        with_try b
          ~handler:(fun b -> emit b (Move (r, Cint (-1))))
          (fun b -> scall b ~dst:r "helper" [ Var obj; Var arg ]);
        emit b (Binop (acc, Add, Var acc, Var r)));
    terminate b (Return (Some (Var acc)));
    finish b
  in
  let p = B.program ~classes:[ cls ] ~main:"main" [ main; helper ] in
  Ir_validate.check_exn p;
  p

let forced_deopt ?(config = Config.new_full) ~(arch : Arch.t) () : forced_deopt
    =
  let cfg =
    { config with Config.promote_calls = 1; deopt_traps = 1; inline = false }
  in
  let p = forced_program () in
  let sites =
    let f = Ir.find_func p "helper" in
    let acc = ref [] in
    Array.iter
      (fun (blk : Ir.block) ->
        Array.iter
          (function
            | Ir.Null_check (_, _, s) -> acc := s :: !acc | _ -> ())
          blk.Ir.instrs)
      f.Ir.fn_blocks;
    List.rev !acc
  in
  let trapped =
    match sites with
    | [ _; sb ] -> sb
    | _ -> failwith "forced_deopt: helper must have exactly 2 raw sites"
  in
  let t = Tier.create ~config:cfg ~arch p in
  let r = Tier.run ~fuel t [] in
  (match r.Interp.outcome with
  | Interp.Returned (Some _) -> ()
  | o -> failwith (Fmt.str "forced_deopt: %a" Interp.pp_outcome o));
  Tier.drain t;
  let reconciled =
    List.for_all
      (fun (_, c) -> Compiler.reconcile c = Ok ())
      (Tier.artifacts t)
  in
  let deopted = Tier.deopt_sites t "helper" in
  let s = Tier.stats t in
  let clean = Compiler.compile ~tier:2 cfg ~arch p in
  (* the deopt variant: the artifact whose decision log records the
     re-materialization (main's own clean promotion compiles later) *)
  let final =
    List.fold_left
      (fun acc (_, (c : Compiler.compiled)) ->
        if
          List.exists
            (fun (e : Decision.event) ->
              e.Decision.action = Decision.Deoptimized)
            c.Compiler.decisions
        then Some c
        else acc)
      None (Tier.artifacts t)
  in
  let remat =
    match final with
    | Some c ->
      c.Compiler.checks.Compiler.explicit_after
      - clean.Compiler.checks.Compiler.explicit_after
    | None -> -1
  in
  {
    fd_sites = sites;
    fd_trapped = trapped;
    fd_deopted = deopted;
    fd_only_offending = deopted = [ trapped ];
    fd_demotions = s.Tier.st_demotions;
    fd_deopts = s.Tier.st_deopts;
    fd_rematerialized = remat;
    fd_reconciled = reconciled;
  }

(* ------------------------------------------------------------------ *)
(* Markdown                                                            *)
(* ------------------------------------------------------------------ *)

let pf = Printf.bprintf

let md_table buf (rows : row list) =
  pf buf
    "| workload | tier0 checks | steady checks | full checks | \
     checks/call t0 | checks/call steady | time-to-peak | promotions | \
     deopts | recompile s |\n";
  pf buf
    "|----------|-------------:|--------------:|------------:|-------------:|-------------------:|-------------:|-----------:|-------:|------------:|\n";
  List.iter
    (fun r ->
      pf buf "| %s | %d | %d | %d | %.3f | %.3f | %d | %d | %d | %.4f |\n"
        r.ss_workload r.ss_tier0 r.ss_steady r.ss_full
        (checks_per_call ~checks:r.ss_tier0 ~calls:r.ss_tier0_calls)
        (checks_per_call ~checks:r.ss_steady ~calls:r.ss_steady_calls)
        r.ss_time_to_peak r.ss_promotions r.ss_deopts r.ss_recompile_seconds)
    rows;
  pf buf "\n"

let report_md (rows : row list) (fd : forced_deopt) : string =
  let buf = Buffer.create (1 lsl 14) in
  pf buf "# Tiered steady state\n\n";
  md_table buf rows;
  pf buf "Forced deoptimization: trap at site %d deoptimized sites [%s] — %s\n"
    fd.fd_trapped
    (String.concat "; " (List.map string_of_int fd.fd_deopted))
    (if fd.fd_only_offending then "only the offending site"
     else "UNEXPECTED extra sites");
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON ("tiered" section of BENCH_results.json + baseline file)       *)
(* ------------------------------------------------------------------ *)

let tiered_schema = "nullelim-tiered/1"
let tiered_schema_version = 1

let row_json (r : row) : Json.t =
  Json.Obj
    [
      ("workload", Json.Str r.ss_workload);
      ("runs", Json.Int r.ss_runs);
      ("time_to_peak", Json.Int r.ss_time_to_peak);
      ("tier0_checks", Json.Int r.ss_tier0);
      ("steady_checks", Json.Int r.ss_steady);
      ("full_checks", Json.Int r.ss_full);
      ( "tier0_checks_per_call",
        Json.Float (checks_per_call ~checks:r.ss_tier0 ~calls:r.ss_tier0_calls)
      );
      ( "steady_checks_per_call",
        Json.Float
          (checks_per_call ~checks:r.ss_steady ~calls:r.ss_steady_calls) );
      ("promotions", Json.Int r.ss_promotions);
      ("demotions", Json.Int r.ss_demotions);
      ("deopts", Json.Int r.ss_deopts);
      ("installs", Json.Int r.ss_installs);
      ("submitted", Json.Int r.ss_submitted);
      ("queue_full", Json.Int r.ss_queue_full);
      ("traps", Json.Int r.ss_traps);
      ("awaits", Json.Int r.ss_awaits);
      ("recompile_seconds", Json.Float r.ss_recompile_seconds);
    ]

let forced_deopt_json (fd : forced_deopt) : Json.t =
  Json.Obj
    [
      ("sites", Json.List (List.map (fun s -> Json.Int s) fd.fd_sites));
      ("trapped_site", Json.Int fd.fd_trapped);
      ("deopt_sites", Json.List (List.map (fun s -> Json.Int s) fd.fd_deopted));
      ("only_offending", Json.Bool fd.fd_only_offending);
      ("demotions", Json.Int fd.fd_demotions);
      ("deopts", Json.Int fd.fd_deopts);
      ("rematerialized", Json.Int fd.fd_rematerialized);
      ("reconciled", Json.Bool fd.fd_reconciled);
    ]

(** The ["tiered"] document.  [mode] records whether the rows came from
    the synchronous manager ("sync" — deterministic, what the baseline
    gate compares) or a real compile pool ("async"). *)
let tiered_json ~mode (rows : row list) (fd : forced_deopt) : Json.t =
  Json.Obj
    [
      ("schema", Json.Str tiered_schema);
      ("schema_version", Json.Int tiered_schema_version);
      ("mode", Json.Str mode);
      ("rows", Json.List (List.map row_json rows));
      ("forced_deopt", forced_deopt_json fd);
    ]

let validate_tiered (j : Json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let* () =
    match Json.member "schema" j with
    | Some (Json.Str s) when s = tiered_schema -> Ok ()
    | Some (Json.Str s) -> Error (Printf.sprintf "unknown schema %S" s)
    | _ -> Error "missing field \"schema\""
  in
  let* () =
    match Json.member "schema_version" j with
    | Some (Json.Int v) when v = tiered_schema_version -> Ok ()
    | Some (Json.Int v) ->
      Error (Printf.sprintf "unsupported schema_version %d" v)
    | _ -> Error "missing field \"schema_version\""
  in
  let* () =
    match Json.member "mode" j with
    | Some (Json.Str ("sync" | "async")) -> Ok ()
    | Some (Json.Str s) -> Error (Printf.sprintf "unknown mode %S" s)
    | _ -> Error "missing field \"mode\""
  in
  let* () =
    match Json.member "rows" j with
    | Some (Json.List rows) ->
      List.fold_left
        (fun acc row ->
          let* () = acc in
          let int_f n =
            match Json.member n row with
            | Some (Json.Int _) -> Ok ()
            | _ -> Error (Printf.sprintf "row: missing integer field %S" n)
          in
          let* () =
            match Json.member "workload" row with
            | Some (Json.Str _) -> Ok ()
            | _ -> Error "row: missing field \"workload\""
          in
          let* () = int_f "time_to_peak" in
          let* () = int_f "tier0_checks" in
          let* () = int_f "steady_checks" in
          let* () = int_f "full_checks" in
          let* () = int_f "promotions" in
          let* () = int_f "deopts" in
          let* () = int_f "demotions" in
          int_f "awaits")
        (Ok ()) rows
    | _ -> Error "missing field \"rows\""
  in
  match Json.member "forced_deopt" j with
  | Some fd -> (
    match (Json.member "only_offending" fd, Json.member "reconciled" fd) with
    | Some (Json.Bool true), Some (Json.Bool true) -> Ok ()
    | Some (Json.Bool _), Some (Json.Bool _) ->
      Error "forced_deopt: deoptimization was not exact or did not reconcile"
    | _ -> Error "forced_deopt: missing boolean evidence fields")
  | None -> Error "missing field \"forced_deopt\""

(* ------------------------------------------------------------------ *)
(* Regression gate (BENCH_baseline.json)                               *)
(* ------------------------------------------------------------------ *)

(** Compare fresh synchronous rows against the committed ["tiered"]
    baseline.  Regressions: a steady state that executes {e more}
    explicit checks than recorded, or promotion/deopt/demotion counters
    that drifted at all — the synchronous state machine is
    deterministic, so any drift is a behaviour change that must be
    acknowledged by refreshing the baseline.  Improvements in the check
    counts and rows missing on either side are reported as drift. *)
let check_against_baseline ~(baseline : Json.t) (rows : row list) :
    (string list, string list) result =
  let fresh = Hashtbl.create 32 in
  List.iter (fun r -> Hashtbl.replace fresh r.ss_workload r) rows;
  let regressions = ref [] and drift = ref [] in
  (match Json.member "rows" baseline with
  | Some (Json.List brows) ->
    List.iter
      (fun row ->
        let geti n =
          match Json.member n row with Some (Json.Int v) -> Some v | _ -> None
        in
        match (Json.member "workload" row, geti "steady_checks") with
        | Some (Json.Str w), Some steady -> (
          match Hashtbl.find_opt fresh w with
          | None ->
            drift := Printf.sprintf "%s: gone from fresh run" w :: !drift
          | Some r ->
            if r.ss_steady > steady then
              regressions :=
                Printf.sprintf
                  "%s: steady-state explicit checks %d > baseline %d" w
                  r.ss_steady steady
                :: !regressions
            else if r.ss_steady < steady then
              drift :=
                Printf.sprintf "%s: improved to %d (baseline %d) — refresh" w
                  r.ss_steady steady
                :: !drift;
            List.iter
              (fun (name, got) ->
                match geti name with
                | Some want when want <> got ->
                  regressions :=
                    Printf.sprintf "%s: %s drifted to %d (baseline %d)" w name
                      got want
                    :: !regressions
                | _ -> ())
              [
                ("promotions", r.ss_promotions);
                ("deopts", r.ss_deopts);
                ("demotions", r.ss_demotions);
              ])
        | _ -> drift := "malformed baseline row" :: !drift)
      brows
  | _ -> regressions := [ "baseline document has no \"rows\" list" ]);
  if !regressions <> [] then Error (List.rev !regressions)
  else Ok (List.rev !drift)
