(** Measured trap costs through the native backend: real wall-clock
    nanoseconds for explicit checks, implicit (trap-guarded) checks and
    full SIGSEGV recovery, replacing the simulator's modeled cycle
    constants with measurements (see EXPERIMENTS.md "Measured trap
    costs").

    Three pointer-chasing microkernels differ only in check
    representation (explicit / implicit / none) so their wall-time
    deltas isolate the per-check cost; a fourth kernel forces one
    hardware trap per iteration and measures the recovery round trip.
    See the implementation header for the anti-optimization reasoning
    (data-dependent chase, identical setjmp frames). *)

module Ir = Nullelim_ir.Ir
module Arch = Nullelim_arch.Arch
module Json = Nullelim_obs.Obs_json

type result = {
  nb_arch : string;
  nb_checks : int;  (** dereference steps (= checks) per kernel run *)
  nb_traps : int;  (** recoveries driven by the recovery kernel *)
  nb_explicit_ns : float;  (** whole-kernel wall time, best of repeats *)
  nb_implicit_ns : float;
  nb_baseline_ns : float;
  nb_explicit_check_ns : float;  (** (explicit - implicit) / checks *)
  nb_implicit_check_ns : float;
      (** (implicit - baseline) / checks — the zero-cost claim,
          measured *)
  nb_recovery_ns : float;  (** per recovered trap *)
  nb_model_explicit_check_ns : float;
      (** what the simulator's cost model charges per explicit check *)
  nb_implicit_check_instrs : int;
      (** instructions the emitter spent on implicit checks: always
          [0] *)
}

val available : unit -> bool
(** Same probe as {!Native.available}. *)

val collect :
  ?iters:int ->
  ?traps:int ->
  ?repeats:int ->
  arch:Arch.t ->
  unit ->
  (result, string) Stdlib.result
(** Run the four kernels ([8 * iters] checks each, [traps] recoveries,
    best of [repeats]; defaults 500k/2k/3).  [Error] when the native
    backend is unavailable or a kernel misbehaves. *)

val schema : string
(** ["nullelim-native-bench/1"] — the ["native"] member schema in
    BENCH_results.json. *)

val to_json : result -> Json.t
val unavailable_json : string -> Json.t
(** The ["native"] member when the host cannot run the backend:
    [{"available": false, "reason": ...}] — CI's cc-masked leg asserts
    this shape. *)

val pp : result Fmt.t
