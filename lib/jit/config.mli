(** JIT configurations — one per line of the paper's evaluation tables.
    See the implementation header for the mapping to Tables 1-7. *)

module Arch = Nullelim_arch.Arch

(** Which null-check elimination algorithm runs. *)
type null_opt =
  | No_null_opt   (** keep every raw check *)
  | Old_whaley    (** forward-availability elimination (the paper's "Old") *)
  | New_phase1    (** the paper's §4.1 backward PRE only *)
  | New_full      (** §4.1 + the architecture-dependent §4.2 *)

(** Which engine executes compiled programs.  Compilation is
    backend-independent; the backend decides how the artifact runs (and
    joins the code-cache key, since the native path carries emission
    artifacts the interpreter path does not). *)
type backend =
  | Interp  (** the cost-accounting simulating interpreter *)
  | Native
      (** C emitted per function, compiled with the system [cc], loaded
          via [dlopen]; implicit checks are real guard-page SIGSEGV
          traps.  Falls back to {!Interp} with a warning when the
          platform or toolchain lacks support — see
          {!Nullelim_backend.Native.available}. *)

val backend_name : backend -> string
(** ["interp"] / ["native"] — CLI values and cache-key tags. *)

type t = {
  name : string;                        (** table row label, [by_name] key *)
  null_opt : null_opt;
  use_trap : bool;                      (** convert to implicit checks where the arch traps *)
  speculate : bool;                     (** AIX read speculation (§3.3.1) *)
  phase2_arch_override : Arch.t option; (** run phase 2 against a different trap model ("Illegal Implicit") *)
  iterations : int;                     (** rounds of the phase-1/bounds/scalar pipeline (Fig 2) *)
  inline : bool;                        (** CHA devirtualization + inlining *)
  heavy_factor : int;                   (** extra pipeline weight (HotSpot-model compile-time handicap) *)
  weak_arrays : bool;                   (** disable loop-invariant array optimizations *)
  promote_calls : int;                  (** tiered: calls before tier-2 promotion *)
  deopt_traps : int;                    (** tiered: traps at a site before deopt *)
  backend : backend;                    (** execution engine for the artifact *)
}

val base : t
(** The common defaults the named configurations override. *)

(** {1 Windows/IA32 configurations (Tables 1-2)} *)

val no_null_opt_no_trap : t
val no_null_opt_trap : t
val old_null_check : t
val new_phase1_only : t
val new_full : t
val hotspot_model : t

(** {1 AIX/PowerPC configurations (Tables 6-7, §5.4)} *)

val aix_no_null_opt : t
val aix_no_speculation : t
val aix_speculation : t
val aix_illegal_implicit : t

val windows_suite : t list
(** The five Windows configurations plus the HotSpot model, in table
    order. *)

val aix_suite : t list
(** The four AIX configurations, in table order. *)

val tier0 : t -> t
(** [tier0 cfg] is the instant-compile entry tier of [cfg]: naive
    explicit checks (no elimination, no trap conversion, no
    speculation, one pipeline round, no inlining), named
    ["<name>@tier0"].  The tiered manager compiles every function with
    this first and promotes hot functions to the unmodified [cfg].
    [promote_calls]/[deopt_traps] are kept, so the policy rides with
    the configuration. *)

val by_name : string -> t option
(** Look a configuration up by its [name] (the CLI's [-c] values). *)
