(** The JIT compile driver: applies a configuration to a program for a
    target architecture, recording per-pass timings and null-check
    statistics. *)

module Ir = Nullelim_ir.Ir
module Arch = Nullelim_arch.Arch
module Pipeline = Nullelim_opt.Pipeline
module Solver = Nullelim_dataflow.Solver
module Metrics = Nullelim_obs.Metrics
module Decision = Nullelim_obs.Decision

type check_stats = {
  raw_checks : int;    (** explicit checks in the input program *)
  raw_implicit : int;  (** implicit checks in the input program *)
  explicit_after : int;
  implicit_after : int;
}

type compiled = {
  program : Ir.program;
  config : Config.t;
  arch : Arch.t;
  timings : Pipeline.timings;
  counters : Pipeline.counters;
      (** per-pass data-flow solver work (see {!Pipeline.counters}) *)
  solver : Solver.stats;
      (** total data-flow solver work of this compilation *)
  checks : check_stats;
  compile_seconds : float;
  metrics : Metrics.t;
      (** per-compile metrics registry: per-pass timings/solver work and
          the compile-level check counters *)
  decisions : Decision.event list;
      (** per-check decision log of this compilation, in record order *)
  native_stats : Nullelim_backend.Emit_c.stats option;
      (** C-emission statistics when [config.backend] is
          {!Config.Native} and the program is expressible in the native
          subset; [None] otherwise.  Emission here is pure bookkeeping —
          compiling/loading the shared object is
          {!Nullelim_backend.Native.compile}'s job. *)
}

val passes :
  ?deopt_sites:Ir.site list -> Config.t -> arch:Arch.t -> Pipeline.pass list
(** [deopt_sites] appends a deoptimization pass (after the
    architecture-dependent phase, before final DCE/codegen) that
    re-materializes the explicit check at each listed implicit site,
    recording a [Deoptimized]/[Trap_fired] decision event per site so
    the log still reconciles. *)

val compile :
  ?tier:int ->
  ?deopt_sites:Ir.site list ->
  Config.t ->
  arch:Arch.t ->
  Ir.program ->
  compiled
(** Compiles a copy; the input program is left untouched.  [tier]
    (default -1 = untiered) tags every decision event of this
    compilation; [deopt_sites] is threaded to {!passes}. *)

val reconcile : compiled -> (unit, string) result
(** Verify that folding the decision log's deltas over the raw check
    counts reproduces [checks] exactly. *)

val count_all_checks : Ir.program -> int * int
(** [(explicit, implicit)] static counts. *)

val nullcheck_time : compiled -> float
(** Seconds spent in null-check optimization passes (Table 4). *)

val other_time : compiled -> float
