(** The JIT compile driver: applies a {!Config.t} to a program for a
    target architecture, recording per-pass timings and static
    null-check statistics. *)

module Ir = Nullelim_ir.Ir
module Arch = Nullelim_arch.Arch
module Opt = Nullelim_opt
module Pipeline = Nullelim_opt.Pipeline
module Solver = Nullelim_dataflow.Solver
module Codegen = Nullelim_backend.Codegen
module Emit_c = Nullelim_backend.Emit_c
module Trace = Nullelim_obs.Trace
module Metrics = Nullelim_obs.Metrics
module Decision = Nullelim_obs.Decision
module Json = Nullelim_obs.Obs_json

type check_stats = {
  raw_checks : int;        (** explicit checks in the input program *)
  raw_implicit : int;      (** implicit checks in the input program *)
  explicit_after : int;
  implicit_after : int;
}

type compiled = {
  program : Ir.program;
  config : Config.t;
  arch : Arch.t;
  timings : Pipeline.timings;
  counters : Pipeline.counters;  (** per-pass solver-work counters *)
  solver : Solver.stats;         (** solver work of this compilation *)
  checks : check_stats;
  compile_seconds : float;
  metrics : Metrics.t;           (** per-compile metrics registry *)
  decisions : Decision.event list;  (** per-check decision log *)
  native_stats : Emit_c.stats option;
      (** C-emission statistics when the configuration's backend is
          [Native] (and the program is expressible); [None] on the
          interp backend.  Emission is pure — no toolchain is
          invoked here. *)
}

let count_all_checks p =
  let e = ref 0 and i = ref 0 in
  Ir.iter_funcs
    (fun f ->
      e := !e + Ir.count_checks ~kind:Ir.Explicit f;
      i := !i + Ir.count_checks ~kind:Ir.Implicit f)
    p;
  (!e, !i)

(* Deoptimization: re-materialize the explicit check at every implicit
   site in [sites].  The tiered manager requests this after a site's
   hardware trap actually fired — the implicit check was free only
   until then (recovery through the OS trap handler costs orders of
   magnitude more than the 2-instruction explicit sequence), so the
   losing bets are individually taken back.  Implicit→explicit is
   always sound: the explicit check raises exactly where the trap
   would have.  Sites are program-unique, so a flat site set
   addresses the offending checks and nothing else. *)
let deopt_pass (sites : Ir.site list) : Pipeline.pass =
  let set = Hashtbl.create (List.length sites) in
  List.iter (fun s -> Hashtbl.replace set s ()) sites;
  Pipeline.per_func "nullcheck:deopt" (fun (f : Ir.func) ->
      Array.iteri
        (fun l (b : Ir.block) ->
          Array.iteri
            (fun k instr ->
              match instr with
              | Ir.Null_check (Ir.Implicit, v, s) when Hashtbl.mem set s ->
                b.instrs.(k) <- Ir.Null_check (Ir.Explicit, v, s);
                Decision.record ~d_explicit:1 ~d_implicit:(-1) ~block:l
                  ~var:v ~site:s ~kind:Decision.Kexplicit
                  ~action:Decision.Deoptimized ~just:Decision.Trap_fired ()
              | _ -> ())
            b.instrs)
        f.fn_blocks)

(** Build the pass list for a configuration. *)
let passes ?(deopt_sites = []) (cfg : Config.t) ~(arch : Arch.t) :
    Pipeline.pass list =
  let normalize =
    (* log:true — dropped code here is original, not a duplicate, so its
       checks must leave the decision log balanced *)
    Pipeline.per_func "other:normalize" (Opt.Opt_util.remove_unreachable ~log:true)
  in
  let cleanup =
    [
      Pipeline.per_func "other:simplify-cfg" (fun f ->
          ignore (Opt.Simplify_cfg.run f));
      Pipeline.per_func "other:copyprop" (fun f -> ignore (Opt.Copyprop.run f));
      Pipeline.per_func "other:dce" (fun f -> ignore (Opt.Dce.run f));
    ]
  in
  let null_pass =
    match cfg.null_opt with
    | Config.No_null_opt -> []
    | Config.Old_whaley ->
      [ Pipeline.per_func "nullcheck:whaley" (fun f -> ignore (Opt.Whaley.run f)) ]
    | Config.New_phase1 | Config.New_full ->
      [ Pipeline.per_func "nullcheck:phase1" (fun f -> ignore (Opt.Phase1.run f)) ]
  in
  let helpers =
    if cfg.weak_arrays then
      [
        Pipeline.per_func "other:boundcheck" (fun f ->
            ignore (Opt.Boundcheck.eliminate_redundant f));
        Pipeline.per_func "other:scalar-repl" (fun f ->
            let stats = { Opt.Scalar_repl.hoisted = 0; replaced = 0 } in
            Opt.Scalar_repl.eliminate_redundant_loads f stats);
      ]
    else
      [
        Pipeline.per_func "other:boundcheck" (fun f -> ignore (Opt.Boundcheck.run f));
        Pipeline.per_func "other:scalar-repl" (fun f ->
            ignore (Opt.Scalar_repl.run ~speculate:cfg.speculate ~arch f));
      ]
  in
  let inline_passes =
    if cfg.inline then
      [
        Pipeline.program_pass "other:devirtualize" (fun p ->
            ignore (Opt.Inline.devirtualize p));
        Pipeline.program_pass "other:inline" (fun p -> ignore (Opt.Inline.run p));
        Pipeline.program_pass "other:intrinsify" (fun p ->
            ignore (Opt.Inline.intrinsify ~arch p));
      ]
    else []
  in
  let iterated =
    List.concat
      (List.init cfg.iterations (fun _ -> null_pass @ helpers @ cleanup))
  in
  let arch_dep =
    match cfg.null_opt with
    | Config.New_full ->
      let phase2_arch =
        Option.value ~default:arch cfg.phase2_arch_override
      in
      [
        Pipeline.per_func "nullcheck:phase2" (fun f ->
            ignore (Opt.Phase2.run ~arch:phase2_arch f));
      ]
    | Config.No_null_opt | Config.Old_whaley | Config.New_phase1 ->
      if cfg.use_trap then
        [
          Pipeline.per_func "other:trap-conversion" (fun f ->
              ignore (Opt.Naive_trap.run ~arch f));
        ]
      else []
  in
  (* the HotSpot stand-in repeats its (cheaper per-round) pipeline many
     times to model a compiler that spends much more time compiling *)
  let heavy =
    if cfg.heavy_factor <= 1 then []
    else
      List.concat
        (List.init (cfg.heavy_factor - 1) (fun _ ->
             null_pass @ helpers @ cleanup))
  in
  (* Deopt runs after the arch-dependent phase so it undoes whatever
     implicit form the offending site ended up in, and before the final
     DCE/codegen so the re-materialized check is register-allocated like
     any other. *)
  let deopt = if deopt_sites = [] then [] else [ deopt_pass deopt_sites ] in
  (normalize :: inline_passes) @ iterated @ heavy @ arch_dep @ deopt
  @ [
      Pipeline.per_func "other:dce-final" (fun f ->
          ignore (Opt.Dce.run ~keep_derefs:true f));
      (* back end: linear-scan register allocation + emission statistics.
         In a real JIT this is where most compilation time goes, which is
         what keeps the paper's null-check share at ~2% (Table 4). *)
      Pipeline.per_func "other:codegen" (fun f ->
          ignore (Codegen.run ~arch f));
    ]

(** Compile a copy of [p]; the input program is left untouched. *)
let compile ?(tier = -1) ?(deopt_sites = []) (cfg : Config.t)
    ~(arch : Arch.t) (p : Ir.program) : compiled =
  let p' = Ir.copy_program p in
  (* provenance determinism: sites minted during optimization depend only
     on the input program, not on what was compiled before *)
  Ir.seed_sites p';
  let raw_e, raw_i = count_all_checks p' in
  let timings = Pipeline.new_timings () in
  let counters = Pipeline.new_counters () in
  let metrics = Metrics.create () in
  let s0 = Solver.snapshot () in
  let t0 = Sys.time () in
  let (), decisions =
    Decision.with_log (fun () ->
        Decision.set_tier tier;
        let run () =
          Pipeline.run ~timings ~counters ~metrics
            (passes ~deopt_sites cfg ~arch) p'
        in
        if Trace.enabled () then
          Trace.span ~cat:"compile"
            ~args:
              [
                ("config", Json.Str cfg.Config.name);
                ("arch", Json.Str arch.Arch.name);
              ]
            "compile" run
        else run ())
  in
  let compile_seconds = Sys.time () -. t0 in
  let solver = Solver.diff (Solver.snapshot ()) s0 in
  let e, i = count_all_checks p' in
  Metrics.set (Metrics.gauge metrics "compile_seconds") compile_seconds;
  Metrics.inc (Metrics.counter metrics "checks_raw_explicit") raw_e;
  Metrics.inc (Metrics.counter metrics "checks_raw_implicit") raw_i;
  Metrics.inc (Metrics.counter metrics "checks_explicit_after") e;
  Metrics.inc (Metrics.counter metrics "checks_implicit_after") i;
  Metrics.inc (Metrics.counter metrics "decision_events") (List.length decisions);
  let native_stats =
    match cfg.Config.backend with
    | Config.Interp -> None
    | Config.Native -> (
      match Emit_c.emit ~trap_area:arch.Arch.trap_area p' with
      | Ok em ->
        let st = em.Emit_c.em_stats in
        Metrics.inc
          (Metrics.counter metrics "native_implicit_check_instrs")
          st.Emit_c.ec_implicit_check_instrs;
        Metrics.inc
          (Metrics.counter metrics "native_trap_entries")
          st.Emit_c.ec_trap_entries;
        Some st
      | Error _ -> None)
  in
  {
    program = p';
    config = cfg;
    arch;
    timings;
    counters;
    solver;
    checks =
      {
        raw_checks = raw_e;
        raw_implicit = raw_i;
        explicit_after = e;
        implicit_after = i;
      };
    compile_seconds;
    metrics;
    decisions;
    native_stats;
  }

(** Check that the decision log accounts exactly for the difference
    between the raw and final static check counts — i.e. that
    [check_stats] is derivable from the log. *)
let reconcile (c : compiled) : (unit, string) result =
  let de, di = Decision.derived_deltas c.decisions in
  let want_e = c.checks.raw_checks + de
  and want_i = c.checks.raw_implicit + di in
  if want_e = c.checks.explicit_after && want_i = c.checks.implicit_after then
    Ok ()
  else
    Error
      (Printf.sprintf
         "decision log does not reconcile: explicit %d+%d=%d vs %d, implicit \
          %d+%d=%d vs %d"
         c.checks.raw_checks de want_e c.checks.explicit_after
         c.checks.raw_implicit di want_i c.checks.implicit_after)

(** Time spent in null-check optimization vs. the rest (Table 4). *)
let nullcheck_time c =
  Pipeline.total_matching c.timings (String.starts_with ~prefix:"nullcheck")

let other_time c =
  Pipeline.total_matching c.timings (fun n ->
      not (String.starts_with ~prefix:"nullcheck" n))
