(** JIT configurations — one per line of the paper's evaluation tables.

    Windows/IA32 configurations (Tables 1-2, Figures 8-11):
    - {!no_null_opt_no_trap}: every required null check is an explicit
      instruction; the baseline.
    - {!no_null_opt_trap}: no elimination, but checks adjacent to a
      trapping dereference become implicit (hardware trap).
    - {!old_null_check}: Whaley's forward-analysis elimination [14] plus
      trap utilization — the previously known best algorithm.
    - {!new_phase1_only}: the paper's architecture-independent phase
      iterated with bound-check optimization and scalar replacement, plus
      the same local trap utilization.
    - {!new_full}: phase 1 iterated with the other optimizations, then
      the architecture-dependent phase 2.
    - {!hotspot_model}: stand-in for the HotSpot Server VM 2.0 beta
      comparison — forward-analysis null elimination with traps and a
      deliberately heavyweight pass pipeline (see DESIGN.md for the
      substitution rationale).

    AIX/PowerPC configurations (Tables 6-7, Figures 14-15) — following
    Section 5.4, the architecture-dependent phase is skipped on AIX;
    every remaining check compiles to a 1-cycle conditional trap:
    - {!aix_speculation}: new phase 1 + read speculation in scalar
      replacement.
    - {!aix_no_speculation}: new phase 1, speculation off.
    - {!aix_no_null_opt}: all optimizations off.
    - {!aix_illegal_implicit}: applies the Intel phase 2 pretending reads
      trap — deliberately violating the Java semantics on AIX (purely
      for the experiment, as in the paper). *)

module Arch = Nullelim_arch.Arch

type null_opt =
  | No_null_opt
  | Old_whaley
  | New_phase1
  | New_full (** phase 1 iterated + phase 2 *)

type backend =
  | Interp (** the cost-accounting simulating interpreter *)
  | Native (** emitted C, compiled and dlopen'd, real SIGSEGV traps *)

let backend_name = function Interp -> "interp" | Native -> "native"

type t = {
  name : string;
  null_opt : null_opt;
  use_trap : bool; (** local trap conversion for configs without phase 2 *)
  speculate : bool;
  phase2_arch_override : Arch.t option;
      (** Illegal Implicit: run phase 2 against this architecture model
          instead of the real one *)
  iterations : int; (** how often phase 1 + helpers iterate (Figure 2) *)
  inline : bool;
  heavy_factor : int;
      (** >1 repeats the cleanup pipeline to model a slower compiler
          (HotSpot stand-in) *)
  weak_arrays : bool;
      (** disable loop-invariant bound-check and load hoisting (HotSpot
          stand-in: the paper attributes its jBYTEmark deficit to array
          optimizations) *)
  promote_calls : int;
      (** tiered execution: invocations of a tier-0 function before the
          manager submits a tier-2 recompilation *)
  deopt_traps : int;
      (** tiered execution: hardware traps at one implicit site before
          it is deoptimized back to an explicit check *)
  backend : backend;
      (** which execution engine runs the compiled program; compilation
          itself is backend-independent, but the artifact cache key
          includes it because the native path additionally produces
          emission artifacts *)
}

let base =
  {
    name = "";
    null_opt = New_full;
    use_trap = true;
    speculate = false;
    phase2_arch_override = None;
    iterations = 4;
    inline = true;
    heavy_factor = 1;
    weak_arrays = false;
    promote_calls = 10;
    deopt_traps = 1;
    backend = Interp;
  }

let no_null_opt_no_trap =
  { base with name = "no-null-opt-no-trap"; null_opt = No_null_opt;
    use_trap = false }

let no_null_opt_trap =
  { base with name = "no-null-opt-trap"; null_opt = No_null_opt }

let old_null_check =
  { base with name = "old-null-check"; null_opt = Old_whaley }

let new_phase1_only =
  { base with name = "new-phase1-only"; null_opt = New_phase1 }

let new_full = { base with name = "new-phase1+2"; null_opt = New_full }

let hotspot_model =
  { base with name = "hotspot-model"; null_opt = Old_whaley;
    heavy_factor = 12; weak_arrays = true }

(* --- AIX variants (Section 5.4) ---------------------------------- *)

let aix_no_null_opt =
  { base with name = "aix-no-null-opt"; null_opt = No_null_opt;
    use_trap = false }

let aix_no_speculation =
  { base with name = "aix-no-speculation"; null_opt = New_phase1;
    use_trap = false }

let aix_speculation =
  { base with name = "aix-speculation"; null_opt = New_phase1;
    use_trap = false; speculate = true }

let aix_illegal_implicit =
  { base with name = "aix-illegal-implicit"; null_opt = New_full;
    use_trap = false;
    phase2_arch_override = Some Arch.ia32_windows }

let windows_suite =
  [ new_full; new_phase1_only; old_null_check; no_null_opt_trap;
    no_null_opt_no_trap; hotspot_model ]

let aix_suite =
  [ aix_speculation; aix_no_speculation; aix_no_null_opt;
    aix_illegal_implicit ]

(* --- tiered execution --------------------------------------------- *)

(* The entry tier compiles instantly and leaves every raw check as an
   explicit instruction: no elimination, no trap conversion, no
   speculation, single pipeline round, no inlining.  Correctness is
   trivially the baseline's, and any function the profile proves hot is
   recompiled with the original (tier-2) configuration. *)
let tier0 cfg =
  {
    cfg with
    name = cfg.name ^ "@tier0";
    null_opt = No_null_opt;
    use_trap = false;
    speculate = false;
    phase2_arch_override = None;
    iterations = 1;
    inline = false;
    heavy_factor = 1;
  }

let by_name n =
  List.find_opt
    (fun c -> c.name = n)
    (windows_suite @ aix_suite)
