(** Cost-accounting interpreter with hardware-trap simulation.

    Plays the role of the CPU and operating system in the paper's
    evaluation: cycles are charged from the architecture's cost model
    (implicit checks are free), and dereferencing null raises
    NullPointerException only when the architecture traps for that
    access kind at that offset — otherwise the access silently touches
    the zero page and the event is counted ([implicit_miss] for a
    violated implicit check, [spec_null_reads] for a benign speculative
    read). *)

module Ir = Nullelim_ir.Ir
module Arch = Nullelim_arch.Arch

type event = Eprint of string | Ecaught of Ir.exn_kind

type outcome =
  | Returned of Value.value option
  | Uncaught of Ir.exn_kind
  | Sim_error of string
      (** the program or the compiler is broken: undefined variable,
          unchecked out-of-bounds access, fuel exhaustion, ... *)

type counters = {
  mutable instrs : int;
  mutable cycles : int;
  mutable explicit_checks : int;
  mutable implicit_checks : int;
  mutable bound_checks : int;
  mutable loads : int;
  mutable stores : int;
  mutable calls : int;
  mutable allocs : int;
  mutable npe_trap : int;
  mutable npe_explicit : int;
  mutable implicit_miss : int;
  mutable spec_null_reads : int;
}

val new_counters : unit -> counters

type result = { outcome : outcome; trace : event list; counters : counters }

val run :
  ?fuel:int ->
  ?metrics:Nullelim_obs.Metrics.t ->
  ?profile:Nullelim_obs.Profile.t ->
  ?dispatch:(string -> Ir.func * int) ->
  ?on_trap:(func:string -> site:int -> unit) ->
  arch:Arch.t ->
  Ir.program ->
  Value.value list ->
  result
(** Run the program's main function on the given arguments.  With
    [metrics], the dynamic counters are also recorded into the registry
    as [interp_*] counters; with [profile], per-block execution counts
    and per-check-site dynamic hits are collected into the given
    collector (when absent, every profiling hook reduces to one option
    match — no measurable slowdown); when tracing is active the whole
    run is one span.

    [dispatch] is the call-boundary code-version resolver for tiered
    execution: every call (and the initial entry into main) maps the
    resolved callee name to the function body to execute and its tier
    — so a version installed between two calls takes effect at the
    next call, never mid-frame.  The default resolves in [p] at tier
    0.  The tier flows into the profile's per-site rows.  [on_trap] is
    invoked when a hardware trap fires at an implicit check site
    (before the NPE propagates) — the tiered manager's deoptimization
    feedback; it must not raise. *)

val record_metrics : ?run:string -> Nullelim_obs.Metrics.t -> counters -> unit
(** Dump dynamic counters into a registry ([interp_*] counters), labeled
    with [("run", run)] when given.  @raise Invalid_argument when called
    without [~run] on a registry that already holds unlabeled [interp_*]
    counters — silently merging two runs' counters was a bug. *)

val equivalent : result -> result -> bool
(** Observable equivalence: same trace of prints and caught exceptions,
    same outcome (exceptions compared by kind — the paper permits
    NPE-for-NPE reordering, so identity is not part of the contract). *)

val pp_outcome : outcome Fmt.t
val pp_event : event Fmt.t
val pp_exn_kind : Ir.exn_kind Fmt.t
