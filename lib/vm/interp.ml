(** Cost-accounting interpreter with hardware-trap simulation.

    The interpreter executes IR programs and plays the role of the CPU and
    operating system in the paper's evaluation:

    - every instruction is charged cycles from the architecture's cost
      model; explicit null checks cost real cycles, implicit ones are
      free;
    - dereferencing a null pointer raises a NullPointerException {e only}
      when the architecture traps for that access kind and the accessed
      byte offset falls inside the protected trap area — otherwise the
      access silently reads zero-page garbage or discards the write,
      exactly the behaviour that makes the "Illegal Implicit"
      configuration of Section 5.4 violate the Java semantics.  Such
      silent events are counted: [implicit_miss] when the compiler had
      designated the access as an implicit-check exception site (a real
      soundness violation), [spec_null_reads] for speculative reads
      hoisted above their null check (benign by construction, Section
      3.3.1);
    - exceptions dispatch to the try-region handler of the raising block,
      unwinding call frames as needed;
    - all observable behaviour (prints, caught exceptions, the final
      outcome) is recorded in a trace so that differential tests can
      compare program variants. *)

module Ir = Nullelim_ir.Ir
module Arch = Nullelim_arch.Arch
module Trace = Nullelim_obs.Trace
module Metrics = Nullelim_obs.Metrics
module Log = Nullelim_obs.Log
module Profile = Nullelim_obs.Profile
open Value

type event = Eprint of string | Ecaught of Ir.exn_kind

type outcome =
  | Returned of value option
  | Uncaught of Ir.exn_kind
  | Sim_error of string (** the program or the compiler is broken *)

type counters = {
  mutable instrs : int;
  mutable cycles : int;
  mutable explicit_checks : int;
  mutable implicit_checks : int;
  mutable bound_checks : int;
  mutable loads : int;
  mutable stores : int;
  mutable calls : int;
  mutable allocs : int;
  mutable npe_trap : int;
  mutable npe_explicit : int;
  mutable implicit_miss : int;
  mutable spec_null_reads : int;
}

let new_counters () =
  {
    instrs = 0; cycles = 0; explicit_checks = 0; implicit_checks = 0;
    bound_checks = 0; loads = 0; stores = 0; calls = 0; allocs = 0;
    npe_trap = 0; npe_explicit = 0; implicit_miss = 0; spec_null_reads = 0;
  }

type result = { outcome : outcome; trace : event list; counters : counters }

exception Jexn of Ir.exn_kind
exception Sim of string
exception Out_of_fuel

type state = {
  prog : Ir.program;
  arch : Arch.t;
  c : counters;
  mutable fuel : int;
  mutable trace_rev : event list;
  mutable depth : int;
  profile : Profile.t option;
      (** per-site/per-block collection; [None] keeps every hook down to
          one option match so disabled profiling costs nothing
          measurable *)
  resolve : string -> Ir.func * int;
      (** call-boundary dispatch: maps a (resolved) function name to the
          code version to execute and its tier.  The default looks the
          function up in [prog] at tier 0; the tiered manager installs
          newly compiled versions here, which is why promotion never
          needs to patch running frames *)
  on_trap : (func:string -> site:int -> unit) option;
      (** runtime feedback: called when a hardware trap fires at an
          implicit check site, before the NPE propagates — the tiered
          manager's deoptimization trigger *)
}

let record st e = st.trace_rev <- e :: st.trace_rev

let charge st n = st.c.cycles <- st.c.cycles + n

let tick st =
  st.c.instrs <- st.c.instrs + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise Out_of_fuel

let as_int = function
  | Vint n -> n
  | Vundef -> raise (Sim "use of undefined variable (int)")
  | v -> raise (Sim (Fmt.str "expected int, got %a" Value.pp v))

let as_float = function
  | Vfloat x -> x
  | Vundef -> raise (Sim "use of undefined variable (float)")
  | v -> raise (Sim (Fmt.str "expected float, got %a" Value.pp v))

let as_ref = function
  | Vref r -> r
  | Vundef -> raise (Sim "use of undefined variable (ref)")
  | v -> raise (Sim (Fmt.str "expected ref, got %a" Value.pp v))

let eval vars = function
  | Ir.Var v ->
    (match vars.(v) with
    | Vundef -> raise (Sim (Printf.sprintf "use of undefined variable v%d" v))
    | x -> x)
  | Ir.Cint n -> Vint n
  | Ir.Cfloat x -> Vfloat x
  | Ir.Cnull -> Vref Null

(** Handle a dereference through a null pointer: hardware trap (NPE) or a
    silent zero-page access. [prev] is the instruction preceding the
    access in its block, used to classify a miss as an implicit-check
    soundness violation and to attribute the event to the implicit
    check's provenance site.  [fname]/[blk] locate the access for the
    profile. *)
let null_deref st ~fname ~tier ~blk ~(prev : Ir.instr option)
    ~(base : Ir.var) ~offset ~access : value =
  (* the site of the implicit check guarding this access, if any *)
  let guard_site =
    match prev with
    | Some (Ir.Null_check (Implicit, v, s)) when v = base -> Some s
    | _ -> None
  in
  if Arch.trap_covers st.arch ~offset:(Some offset) ~access then begin
    st.c.npe_trap <- st.c.npe_trap + 1;
    (match st.profile with
    | Some p -> (
      match guard_site with
      | Some s -> Profile.record_trap ~tier p ~func:fname ~site:s
      | None -> Profile.record_other_trap p)
    | None -> ());
    (match (st.on_trap, guard_site) with
    | Some h, Some s -> h ~func:fname ~site:s
    | _ -> ());
    raise (Jexn Ir.Npe)
  end
  else begin
    (match guard_site with
    | Some s ->
      st.c.implicit_miss <- st.c.implicit_miss + 1;
      (match st.profile with
      | Some p -> Profile.record_miss ~tier p ~func:fname ~site:s
      | None -> ());
      Log.debug
        "implicit check missed: null deref of v%d at offset %d not trapped"
        base offset
    | None ->
      st.c.spec_null_reads <- st.c.spec_null_reads + 1;
      (match st.profile with
      | Some p -> Profile.record_spec_read p ~func:fname ~block:blk
      | None -> ()));
    Value.null_page_garbage
  end

let cmp_values c a b =
  match (a, b) with
  | Vint x, Vint y ->
    (match c with
    | Ir.Eq -> x = y | Ir.Ne -> x <> y | Ir.Lt -> x < y
    | Ir.Le -> x <= y | Ir.Gt -> x > y | Ir.Ge -> x >= y)
  | Vfloat x, Vfloat y ->
    (match c with
    | Ir.Eq -> x = y | Ir.Ne -> x <> y | Ir.Lt -> x < y
    | Ir.Le -> x <= y | Ir.Gt -> x > y | Ir.Ge -> x >= y)
  | Vref x, Vref y ->
    (match c with
    | Ir.Eq -> x == y || (x = Null && y = Null)
    | Ir.Ne -> not (x == y || (x = Null && y = Null))
    | _ -> raise (Sim "ordered comparison on references"))
  | _ -> raise (Sim "comparison on mismatched values")

let intrinsic_of_name = Ir.intrinsic_of_name

let apply_intrinsic u x =
  match u with
  | Ir.Fsqrt -> sqrt x
  | Ir.Fexp -> exp x
  | Ir.Flog -> log x
  | Ir.Fsin -> sin x
  | Ir.Fcos -> cos x
  | Ir.Neg | Ir.Fneg | Ir.I2f | Ir.F2i -> assert false

(* [tier] is the tier of the code version being executed; it only
   flows into profile events (and stays 0 for untiered runs). *)
let rec exec_func st ~tier (f : Ir.func) (args : value list) : value option =
  st.depth <- st.depth + 1;
  if st.depth > 2000 then raise (Sim "call depth exceeded");
  let vars = Array.make (max f.fn_nvars 1) Vundef in
  List.iteri
    (fun i a -> if i < f.fn_nvars then vars.(i) <- a)
    args;
  let rec run l =
    let b = Ir.block f l in
    let next =
      try `Flow (exec_block st ~tier f vars l b)
      with Jexn k -> (
        match Ir.handler_of f b.breg with
        | Some h ->
          record st (Ecaught k);
          `Flow (`Jump h)
        | None -> raise (Jexn k))
    in
    match next with
    | `Flow (`Jump l') -> run l'
    | `Flow (`Return v) -> v
  in
  let r = run 0 in
  st.depth <- st.depth - 1;
  r

and exec_block st ~tier f vars (l : Ir.label) (b : Ir.block) :
    [ `Jump of Ir.label | `Return of value option ] =
  let cost = st.arch.cost in
  (match st.profile with
  | Some p -> Profile.hit_block p ~func:f.Ir.fn_name ~block:l
  | None -> ());
  let prev = ref None in
  Array.iter
    (fun i ->
      exec_instr st ~tier f vars ~blk:l ~prev:!prev i;
      prev := Some i)
    b.instrs;
  tick st;
  match b.term with
  | Goto l ->
    charge st cost.c_branch;
    `Jump l
  | If (c, x, y, l1, l2) ->
    charge st cost.c_branch;
    `Jump (if cmp_values c (eval vars x) (eval vars y) then l1 else l2)
  | Ifnull (v, l1, l2) ->
    charge st cost.c_branch;
    (match as_ref vars.(v) with Null -> `Jump l1 | Obj _ | Arr _ -> `Jump l2)
  | Return None ->
    charge st cost.c_branch;
    `Return None
  | Return (Some o) ->
    charge st cost.c_branch;
    `Return (Some (eval vars o))
  | Throw s -> raise (Jexn (User s))

and exec_instr st ~tier f vars ~blk ~prev (i : Ir.instr) : unit =
  let cost = st.arch.cost in
  let fname = f.Ir.fn_name in
  tick st;
  match i with
  | Move (d, o) ->
    charge st cost.c_alu;
    vars.(d) <- eval vars o
  | Unop (d, u, o) -> (
    match u with
    | Neg ->
      charge st cost.c_alu;
      vars.(d) <- Vint (-as_int (eval vars o))
    | Fneg ->
      charge st cost.c_fpu;
      vars.(d) <- Vfloat (-.as_float (eval vars o))
    | I2f ->
      charge st cost.c_fpu;
      vars.(d) <- Vfloat (float_of_int (as_int (eval vars o)))
    | F2i ->
      charge st cost.c_fpu;
      vars.(d) <- Vint (int_of_float (as_float (eval vars o)))
    | (Fsqrt | Fexp | Flog | Fsin | Fcos) as u ->
      charge st cost.c_intrinsic;
      vars.(d) <- Vfloat (apply_intrinsic u (as_float (eval vars o))))
  | Binop (d, op, a, b) -> (
    let va = eval vars a and vb = eval vars b in
    match op with
    | Add -> charge st cost.c_alu; vars.(d) <- Vint (as_int va + as_int vb)
    | Sub -> charge st cost.c_alu; vars.(d) <- Vint (as_int va - as_int vb)
    | Mul -> charge st cost.c_alu; vars.(d) <- Vint (as_int va * as_int vb)
    | Div ->
      charge st cost.c_alu;
      let n = as_int vb in
      if n = 0 then raise (Jexn Arith) else vars.(d) <- Vint (as_int va / n)
    | Rem ->
      charge st cost.c_alu;
      let n = as_int vb in
      if n = 0 then raise (Jexn Arith) else vars.(d) <- Vint (as_int va mod n)
    | Band -> charge st cost.c_alu; vars.(d) <- Vint (as_int va land as_int vb)
    | Bor -> charge st cost.c_alu; vars.(d) <- Vint (as_int va lor as_int vb)
    | Bxor -> charge st cost.c_alu; vars.(d) <- Vint (as_int va lxor as_int vb)
    | Shl -> charge st cost.c_alu; vars.(d) <- Vint (as_int va lsl (as_int vb land 63))
    | Shr -> charge st cost.c_alu; vars.(d) <- Vint (as_int va asr (as_int vb land 63))
    | Fadd -> charge st cost.c_fpu; vars.(d) <- Vfloat (as_float va +. as_float vb)
    | Fsub -> charge st cost.c_fpu; vars.(d) <- Vfloat (as_float va -. as_float vb)
    | Fmul -> charge st cost.c_fpu; vars.(d) <- Vfloat (as_float va *. as_float vb)
    | Fdiv -> charge st cost.c_fpu; vars.(d) <- Vfloat (as_float va /. as_float vb)
    | Icmp c | Fcmp c ->
      charge st cost.c_alu;
      vars.(d) <- Vint (if cmp_values c va vb then 1 else 0))
  | Null_check (Explicit, v, s) -> (
    charge st cost.c_explicit_check;
    st.c.explicit_checks <- st.c.explicit_checks + 1;
    (match st.profile with
    | Some p ->
      Profile.hit_check ~tier p ~func:fname ~site:s ~kind:Profile.Cexplicit
    | None -> ());
    match as_ref vars.(v) with
    | Null ->
      st.c.npe_explicit <- st.c.npe_explicit + 1;
      (match st.profile with
      | Some p -> Profile.record_npe ~tier p ~func:fname ~site:s
      | None -> ());
      raise (Jexn Npe)
    | Obj _ | Arr _ -> ())
  | Null_check (Implicit, v, s) ->
    (* free: the following instruction is the exception site *)
    st.c.implicit_checks <- st.c.implicit_checks + 1;
    (match st.profile with
    | Some p ->
      Profile.hit_check ~tier p ~func:fname ~site:s ~kind:Profile.Cimplicit
    | None -> ());
    ignore (as_ref vars.(v))
  | Bound_check (io, lo, s) ->
    charge st cost.c_bound_check;
    st.c.bound_checks <- st.c.bound_checks + 1;
    (match st.profile with
    | Some p ->
      Profile.hit_check ~tier p ~func:fname ~site:s ~kind:Profile.Cbound
    | None -> ());
    let idx = as_int (eval vars io) and len = as_int (eval vars lo) in
    if idx < 0 || idx >= len then raise (Jexn Oob)
  | Get_field (d, o, fld) -> (
    charge st cost.c_load;
    st.c.loads <- st.c.loads + 1;
    match as_ref vars.(o) with
    | Obj obj -> (
      match Hashtbl.find_opt obj.o_slots fld.foffset with
      | Some v -> vars.(d) <- v
      | None -> raise (Sim ("field " ^ fld.fname ^ " missing from object")))
    | Null ->
      vars.(d) <-
        null_deref st ~fname ~tier ~blk ~prev ~base:o ~offset:fld.foffset
          ~access:Arch.Read
    | Arr _ -> raise (Sim "field access on array"))
  | Put_field (o, fld, s) -> (
    charge st cost.c_store;
    st.c.stores <- st.c.stores + 1;
    let v = eval vars s in
    match as_ref vars.(o) with
    | Obj obj -> Hashtbl.replace obj.o_slots fld.foffset v
    | Null ->
      ignore
        (null_deref st ~fname ~tier ~blk ~prev ~base:o ~offset:fld.foffset
           ~access:Arch.Write)
    | Arr _ -> raise (Sim "field store on array"))
  | Array_load (d, a, io, k) -> (
    charge st cost.c_load;
    st.c.loads <- st.c.loads + 1;
    let idx = as_int (eval vars io) in
    match as_ref vars.(a) with
    | Arr arr ->
      if arr.a_kind <> k then raise (Sim "array load with wrong element kind");
      if idx < 0 || idx >= Array.length arr.a_elems then
        raise (Sim "unchecked out-of-bounds array read")
      else vars.(d) <- arr.a_elems.(idx)
    | Null ->
      let offset = Ir.array_elem_base + (idx * Ir.slot_size) in
      vars.(d) <-
        null_deref st ~fname ~tier ~blk ~prev ~base:a ~offset ~access:Arch.Read
    | Obj _ -> raise (Sim "array read on object"))
  | Array_store (a, io, s, k) -> (
    charge st cost.c_store;
    st.c.stores <- st.c.stores + 1;
    let idx = as_int (eval vars io) in
    let v = eval vars s in
    match as_ref vars.(a) with
    | Arr arr ->
      if arr.a_kind <> k then raise (Sim "array store with wrong element kind");
      if idx < 0 || idx >= Array.length arr.a_elems then
        raise (Sim "unchecked out-of-bounds array write")
      else arr.a_elems.(idx) <- v
    | Null ->
      let offset = Ir.array_elem_base + (idx * Ir.slot_size) in
      ignore
        (null_deref st ~fname ~tier ~blk ~prev ~base:a ~offset ~access:Arch.Write)
    | Obj _ -> raise (Sim "array write on object"))
  | Array_length (d, a) -> (
    charge st cost.c_load;
    st.c.loads <- st.c.loads + 1;
    match as_ref vars.(a) with
    | Arr arr -> vars.(d) <- Vint (Array.length arr.a_elems)
    | Null ->
      vars.(d) <-
        null_deref st ~fname ~tier ~blk ~prev ~base:a
          ~offset:Ir.array_length_offset ~access:Arch.Read
    | Obj _ -> raise (Sim "arraylength on object"))
  | New_object (d, cname) ->
    charge st cost.c_alloc;
    st.c.allocs <- st.c.allocs + 1;
    let cls = Ir.find_class st.prog cname in
    vars.(d) <- Vref (Obj (Value.new_object st.prog.classes cls))
  | New_array (d, k, n) ->
    let len = as_int (eval vars n) in
    if len < 0 then raise (Jexn (User "NegativeArraySize"));
    charge st (cost.c_alloc + (len / 16));
    st.c.allocs <- st.c.allocs + 1;
    vars.(d) <- Vref (Arr (Value.new_array k len))
  | Call (d, target, args) -> (
    let argv = List.map (eval vars) args in
    let fname =
      match target with
      | Static s -> s
      | Virtual mname -> (
        match argv with
        | Vref (Obj o) :: _ -> (
          match Ir.resolve_method st.prog o.o_cls mname with
          | Some fn -> fn
          | None -> raise (Sim ("no method " ^ mname ^ " on " ^ o.o_cls.cname)))
        | Vref Null :: _ ->
          (* method-table load through null: a trap with no check site *)
          if Arch.trap_covers st.arch ~offset:(Some 0) ~access:Arch.Read
          then begin
            st.c.npe_trap <- st.c.npe_trap + 1;
            (match st.profile with
            | Some p -> Profile.record_other_trap p
            | None -> ());
            raise (Jexn Npe)
          end
          else raise (Sim "virtual dispatch through null without trap")
        | _ -> raise (Sim "virtual dispatch on non-object"))
    in
    match intrinsic_of_name fname with
    | Some u ->
      (* out-of-line math routine *)
      charge st cost.c_intrinsic_call;
      st.c.calls <- st.c.calls + 1;
      let x = match argv with [ v ] -> as_float v | _ -> raise (Sim "bad intrinsic arity") in
      (match d with
      | Some d -> vars.(d) <- Vfloat (apply_intrinsic u x)
      | None -> ())
    | None -> (
      charge st cost.c_call;
      st.c.calls <- st.c.calls + 1;
      let callee, ctier = st.resolve fname in
      let r = exec_func st ~tier:ctier callee argv in
      match (d, r) with
      | Some d, Some v -> vars.(d) <- v
      | Some _, None -> raise (Sim ("call to void function " ^ fname ^ " expects a value"))
      | None, _ -> ()))
  | Print o ->
    charge st cost.c_print;
    let v = eval vars o in
    record st (Eprint (Fmt.str "%a" Value.pp v))

(** Dump a run's dynamic counters into a metrics registry as
    [interp_*]-prefixed counters.  Each run must be distinguishable in
    the registry: pass [~run] to label the counters with the run's name
    (repeated runs with distinct labels accumulate side by side, and
    identical labels accumulate into one series, both explicitly
    chosen).  Without a label, a second dump into a registry that
    already holds unlabeled [interp_*] counters would silently merge two
    unrelated runs — that case is rejected. *)
let record_metrics ?run (m : Metrics.t) (c : counters) : unit =
  let labels =
    match run with Some r -> [ ("run", r) ] | None -> []
  in
  (if run = None && Metrics.counter_total m "interp_instrs" <> 0
  then
     invalid_arg
       "Interp.record_metrics: registry already holds unlabeled interp_* \
        counters; pass ~run to distinguish repeated runs");
  let add name v =
    Metrics.inc (Metrics.counter m ~labels ("interp_" ^ name)) v
  in
  add "instrs" c.instrs;
  add "cycles" c.cycles;
  add "explicit_checks" c.explicit_checks;
  add "implicit_checks" c.implicit_checks;
  add "bound_checks" c.bound_checks;
  add "loads" c.loads;
  add "stores" c.stores;
  add "calls" c.calls;
  add "allocs" c.allocs;
  add "npe_trap" c.npe_trap;
  add "npe_explicit" c.npe_explicit;
  add "implicit_miss" c.implicit_miss;
  add "spec_null_reads" c.spec_null_reads

(** Run a program's main function. *)
let run ?(fuel = 400_000_000) ?metrics ?profile ?dispatch ?on_trap
    ~(arch : Arch.t) (p : Ir.program) (args : value list) : result =
  let resolve =
    match dispatch with
    | Some d -> d
    | None -> fun n -> (Ir.find_func p n, 0)
  in
  let st =
    {
      prog = p;
      arch;
      c = new_counters ();
      fuel;
      trace_rev = [];
      depth = 0;
      profile;
      resolve;
      on_trap;
    }
  in
  let execute () =
    try
      let mainf, mtier = st.resolve p.prog_main in
      Returned (exec_func st ~tier:mtier mainf args)
    with
    | Jexn k -> Uncaught k
    | Sim msg -> Sim_error msg
    | Out_of_fuel -> Sim_error "out of fuel"
    | Division_by_zero -> Sim_error "host division by zero"
  in
  let outcome =
    if Trace.enabled () then
      Trace.span ~cat:"interp"
        ~args:[ ("main", Nullelim_obs.Obs_json.Str p.prog_main) ]
        "run" execute
    else execute ()
  in
  (match metrics with Some m -> record_metrics m st.c | None -> ());
  { outcome; trace = List.rev st.trace_rev; counters = st.c }

let pp_exn_kind ppf = function
  | Ir.Npe -> Fmt.string ppf "NullPointerException"
  | Ir.Oob -> Fmt.string ppf "ArrayIndexOutOfBoundsException"
  | Ir.Arith -> Fmt.string ppf "ArithmeticException"
  | Ir.User s -> Fmt.string ppf s

let pp_outcome ppf = function
  | Returned None -> Fmt.string ppf "returned"
  | Returned (Some v) -> Fmt.pf ppf "returned %a" Value.pp v
  | Uncaught k -> Fmt.pf ppf "uncaught %a" pp_exn_kind k
  | Sim_error m -> Fmt.pf ppf "simulation error: %s" m

let pp_event ppf = function
  | Eprint s -> Fmt.pf ppf "print %s" s
  | Ecaught k -> Fmt.pf ppf "caught %a" pp_exn_kind k

(** Observable equivalence for differential testing: same trace of prints
    and caught exceptions, same outcome (values compared structurally for
    ints/floats, by kind for exceptions). *)
let equivalent (a : result) (b : result) : bool =
  let ev_eq x y =
    match (x, y) with
    | Eprint s, Eprint t -> s = t
    | Ecaught k, Ecaught l -> k = l
    | Eprint _, Ecaught _ | Ecaught _, Eprint _ -> false
  in
  let out_eq x y =
    match (x, y) with
    | Returned None, Returned None -> true
    | Returned (Some (Vint a)), Returned (Some (Vint b)) -> a = b
    | Returned (Some (Vfloat a)), Returned (Some (Vfloat b)) ->
      a = b || (Float.is_nan a && Float.is_nan b)
    | Returned (Some (Vref Null)), Returned (Some (Vref Null)) -> true
    | Returned (Some (Vref _)), Returned (Some (Vref _)) -> true
    | Uncaught k, Uncaught l -> k = l
    | _ -> false
  in
  List.length a.trace = List.length b.trace
  && List.for_all2 ev_eq a.trace b.trace
  && out_eq a.outcome b.outcome
