(* See domain_shard.mli.  The per-domain cache is a short assoc list:
   owners that a domain touches concurrently are few (the global
   registry, the flight recorder, at most a handful of per-compile
   registries in flight), so linear scan beats hashing and the bound
   keeps dead owners from pinning their shards forever. *)

let cache_cap = 8

module Make (S : sig
  type shard

  val create : owner_uid:int -> domain:int -> shard
end) =
struct
  type owner = {
    uid : int;
    m : Mutex.t;
    mutable all : S.shard list;  (* every shard ever created, newest first *)
  }

  let next_uid = Atomic.make 0

  (* One key for the whole functor application: uid -> this domain's
     shard, most recently used first. *)
  let key : (int * S.shard) list ref Domain.DLS.key =
    Domain.DLS.new_key (fun () -> ref [])

  let create () =
    { uid = Atomic.fetch_and_add next_uid 1; m = Mutex.create (); all = [] }

  let uid o = o.uid

  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl

  let my_shard o =
    let cache = Domain.DLS.get key in
    match List.assoc_opt o.uid !cache with
    | Some s -> s
    | None ->
      let s =
        S.create ~owner_uid:o.uid ~domain:(Domain.self () :> int)
      in
      Mutex.lock o.m;
      o.all <- s :: o.all;
      Mutex.unlock o.m;
      cache := (o.uid, s) :: take (cache_cap - 1) !cache;
      s

  let shards o =
    Mutex.lock o.m;
    let s = o.all in
    Mutex.unlock o.m;
    s
end
