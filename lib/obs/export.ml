(* See export.mli.  The renderer works straight off the registry's
   merged reads (not the JSON snapshot) so bucket counts can be
   accumulated into the cumulative form Prometheus requires without a
   JSON round-trip; [lint] closes the loop by checking any exposition
   text — ours or a server's — against the format rules the tests and
   the CI smoke rely on. *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

(* Prometheus metric-name charset; anything else becomes '_', and a
   leading digit gets a '_' prefix. *)
let sanitize_name (s : string) : string =
  if s = "" then "_"
  else begin
    let b = Buffer.create (String.length s + 1) in
    String.iteri
      (fun i c ->
        if i = 0 && not (is_name_start c) then begin
          Buffer.add_char b '_';
          if is_name_char c then Buffer.add_char b c
        end
        else Buffer.add_char b (if is_name_char c then c else '_'))
      s;
    Buffer.contents b
  end

(* Label values: backslash, double-quote and newline are escaped, per
   the exposition-format spec. *)
let escape_label_value (s : string) : string =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_labels (labels : Metrics.labels) : string =
  match labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize_name k)
               (escape_label_value v))
           labels)
    ^ "}"

let render_float (v : float) : string =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else
    let s = Printf.sprintf "%.12g" v in
    s

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

type series =
  | Scounter of Metrics.labels * int
  | Sgauge of Metrics.labels * float
  | Shistogram of Metrics.labels * float array * int array * int * float

let render_series (b : Buffer.t) name = function
  | Scounter (labels, v) ->
    Buffer.add_string b
      (Printf.sprintf "%s%s %d\n" name (render_labels labels) v)
  | Sgauge (labels, v) ->
    Buffer.add_string b
      (Printf.sprintf "%s%s %s\n" name (render_labels labels)
         (render_float v))
  | Shistogram (labels, buckets, counts, count, sum) ->
    (* the registry stores per-bucket counts; the exposition format
       wants cumulative-to-le, ending at le="+Inf" = _count *)
    let cum = ref 0 in
    Array.iteri
      (fun k le ->
        cum := !cum + counts.(k);
        Buffer.add_string b
          (Printf.sprintf "%s_bucket%s %d\n" name
             (render_labels (labels @ [ ("le", render_float le) ]))
             !cum))
      buckets;
    Buffer.add_string b
      (Printf.sprintf "%s_bucket%s %d\n" name
         (render_labels (labels @ [ ("le", "+Inf") ]))
         count);
    Buffer.add_string b
      (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels)
         (render_float sum));
    Buffer.add_string b
      (Printf.sprintf "%s_count%s %d\n" name (render_labels labels) count)

let render (r : Metrics.t) : string =
  let snap = Metrics.snapshot r in
  (* Re-read the registry for the values (merged, exact after
     quiescence); the snapshot only supplies the deterministic ordered
     universe of (name, labels, kind). *)
  let collect section of_json =
    match Obs_json.member section snap with
    | Some (Obs_json.List xs) -> List.filter_map of_json xs
    | _ -> []
  in
  let name_labels o =
    match (Obs_json.member "name" o, Obs_json.member "labels" o) with
    | Some (Obs_json.Str n), Some (Obs_json.Obj kvs) ->
      Some
        ( n,
          List.filter_map
            (fun (k, v) ->
              match v with Obs_json.Str s -> Some (k, s) | _ -> None)
            kvs )
    | _ -> None
  in
  let counters =
    collect "counters" (fun o ->
        Option.map
          (fun (n, labels) ->
            (n, Scounter (labels, Metrics.counter_total r ~labels n)))
          (name_labels o))
  in
  let gauges =
    collect "gauges" (fun o ->
        match (name_labels o, Obs_json.member "value" o) with
        | Some (n, labels), Some (Obs_json.Float v) ->
          Some (n, Sgauge (labels, v))
        | Some (n, labels), Some (Obs_json.Int v) ->
          Some (n, Sgauge (labels, float_of_int v))
        | _ -> None)
  in
  let histograms =
    collect "histograms" (fun o ->
        Option.bind (name_labels o) (fun (n, labels) ->
            Option.map
              (fun (buckets, counts, count, sum) ->
                (n, Shistogram (labels, buckets, counts, count, sum)))
              (Metrics.histogram_merged r ~labels n)))
  in
  let b = Buffer.create 4096 in
  let emit_family tname series =
    (* one # TYPE header per family, series grouped beneath it *)
    let last = ref "" in
    List.iter
      (fun (name, s) ->
        let name = sanitize_name name in
        if name <> !last then begin
          Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name tname);
          last := name
        end;
        render_series b name s)
      series
  in
  emit_family "counter" counters;
  emit_family "gauge" gauges;
  emit_family "histogram" histograms;
  Buffer.contents b

let content_type = "text/plain; version=0.0.4; charset=utf-8"

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

type parsed_line = {
  pl_name : string;
  pl_labels : (string * string) list;
  pl_value : float;
}

exception Bad of string

let parse_sample (line : string) : parsed_line =
  let n = String.length line in
  let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do incr i done;
  if !i = 0 then bad "no metric name";
  if not (is_name_start line.[0]) then bad "name starts with %c" line.[0];
  let name = String.sub line 0 !i in
  let labels = ref [] in
  if !i < n && line.[!i] = '{' then begin
    incr i;
    let stop = ref false in
    while not !stop do
      if !i >= n then bad "unterminated label set";
      if line.[!i] = '}' then begin incr i; stop := true end
      else begin
        let k0 = !i in
        while !i < n && is_name_char line.[!i] do incr i done;
        if !i = k0 then bad "empty label name";
        let k = String.sub line k0 (!i - k0) in
        if !i >= n || line.[!i] <> '=' then bad "label %s: expected '='" k;
        incr i;
        if !i >= n || line.[!i] <> '"' then bad "label %s: expected '\"'" k;
        incr i;
        let vb = Buffer.create 16 in
        let closed = ref false in
        while not !closed do
          if !i >= n then bad "label %s: unterminated value" k;
          (match line.[!i] with
          | '"' -> closed := true
          | '\\' ->
            if !i + 1 >= n then bad "label %s: dangling escape" k;
            (match line.[!i + 1] with
            | '\\' -> Buffer.add_char vb '\\'
            | '"' -> Buffer.add_char vb '"'
            | 'n' -> Buffer.add_char vb '\n'
            | c -> bad "label %s: bad escape \\%c" k c);
            incr i
          | c -> Buffer.add_char vb c);
          incr i
        done;
        labels := (k, Buffer.contents vb) :: !labels;
        if !i < n && line.[!i] = ',' then incr i
        else if !i >= n || line.[!i] <> '}' then
          bad "label %s: expected ',' or '}'" k
      end
    done
  end;
  if !i >= n || line.[!i] <> ' ' then bad "expected ' ' before value";
  incr i;
  let vs = String.sub line !i (n - !i) in
  let value =
    match String.trim vs with
    | "+Inf" -> Float.infinity
    | "-Inf" -> Float.neg_infinity
    | "NaN" -> Float.nan
    | s -> (
      match float_of_string_opt s with
      | Some v -> v
      | None -> bad "unparseable value %S" s)
  in
  { pl_name = name; pl_labels = List.rev !labels; pl_value = value }

let lint (text : string) : (unit, string) result =
  let lines = String.split_on_char '\n' text in
  (* (histogram family, labels minus le) -> last cumulative count seen,
     to check bucket monotonicity and the +Inf == _count tie-out *)
  let buckets : (string * (string * string) list, float) Hashtbl.t =
    Hashtbl.create 32
  in
  let inf_buckets : (string * (string * string) list, float) Hashtbl.t =
    Hashtbl.create 32
  in
  let counts : (string * (string * string) list, float) Hashtbl.t =
    Hashtbl.create 32
  in
  let types : (string, string) Hashtbl.t = Hashtbl.create 32 in
  try
    List.iteri
      (fun lineno line ->
        let fail msg =
          raise (Bad (Printf.sprintf "line %d: %s" (lineno + 1) msg))
        in
        let line = if String.length line > 0 && line.[String.length line - 1] = '\r'
          then String.sub line 0 (String.length line - 1) else line in
        if line = "" then ()
        else if String.length line > 0 && line.[0] = '#' then begin
          match String.split_on_char ' ' line with
          | "#" :: ("TYPE" as kw) :: name :: rest ->
            (match rest with
            | [ ("counter" | "gauge" | "histogram" | "summary" | "untyped") ]
              ->
              Hashtbl.replace types name (List.hd rest)
            | _ -> fail (Printf.sprintf "%s %s: bad type" kw name))
          | "#" :: "HELP" :: _ :: _ -> ()
          | _ -> fail "malformed comment (want # TYPE or # HELP)"
        end
        else
          let p =
            try parse_sample line with Bad m -> fail m
          in
          let base suffix =
            let bn = String.length p.pl_name - String.length suffix in
            if
              bn > 0
              && String.sub p.pl_name bn (String.length suffix) = suffix
              && Hashtbl.find_opt types (String.sub p.pl_name 0 bn)
                 = Some "histogram"
            then Some (String.sub p.pl_name 0 bn)
            else None
          in
          (* every sample must belong to a family declared by a
             preceding # TYPE — either directly or through a histogram
             family's _bucket/_sum/_count suffixes *)
          if
            (not (Hashtbl.mem types p.pl_name))
            && base "_bucket" = None && base "_sum" = None
            && base "_count" = None
          then fail (p.pl_name ^ ": sample without a preceding # TYPE");
          (match base "_bucket" with
          | Some fam ->
            let le =
              match List.assoc_opt "le" p.pl_labels with
              | Some le -> le
              | None -> fail (fam ^ "_bucket without le label")
            in
            let key =
              (fam, List.filter (fun (k, _) -> k <> "le") p.pl_labels)
            in
            let prev =
              Option.value ~default:0. (Hashtbl.find_opt buckets key)
            in
            if p.pl_value < prev then
              fail
                (Printf.sprintf
                   "%s: bucket le=%s count %g below previous %g (buckets \
                    must be cumulative)"
                   fam le p.pl_value prev);
            Hashtbl.replace buckets key p.pl_value;
            if le = "+Inf" then Hashtbl.replace inf_buckets key p.pl_value
          | None -> (
            match base "_count" with
            | Some fam ->
              Hashtbl.replace counts (fam, p.pl_labels) p.pl_value
            | None -> ()));
          if Float.is_finite p.pl_value && p.pl_value < 0.
             && Hashtbl.find_opt types p.pl_name = Some "counter"
          then fail (p.pl_name ^ ": negative counter value"))
      lines;
    (* every histogram family must tie out: +Inf bucket = _count *)
    Hashtbl.iter
      (fun (fam, labels) total ->
        match Hashtbl.find_opt inf_buckets (fam, labels) with
        | Some inf when inf <> total ->
          raise
            (Bad
               (Printf.sprintf "%s: +Inf bucket %g <> _count %g" fam inf
                  total))
        | Some _ -> ()
        | None -> raise (Bad (fam ^ ": histogram without +Inf bucket")))
      counts;
    Ok ()
  with Bad m -> Error m
