(** Per-site dynamic execution profile collector.  See the interface for
    the model.  Implementation notes: the hot paths ([hit_block],
    [hit_check]) run once per executed block / check, so cells are
    cached in hash tables keyed by [(func, block)] and
    [(site, kind, tier)] and bumped in place; everything else is
    event-rate (exceptions). *)

type check_kind = Cexplicit | Cimplicit | Cbound

type site_row = {
  sr_site : int;
  sr_func : string;
  sr_kind : check_kind;
  sr_tier : int;
  sr_hits : int;
  sr_npe : int;
  sr_traps : int;
  sr_misses : int;
}

type block_row = {
  br_func : string;
  br_block : int;
  br_count : int;
  br_spec_reads : int;
}

type site_cell = {
  func : string;
  mutable hits : int;
  mutable npe : int;
  mutable traps : int;
  mutable misses : int;
}

type block_cell = { mutable count : int; mutable spec_reads : int }

type t = {
  site_tbl : (int * check_kind * int, site_cell) Hashtbl.t;
  block_tbl : (string * int, block_cell) Hashtbl.t;
  mutable other : int;
}

let create () =
  { site_tbl = Hashtbl.create 256; block_tbl = Hashtbl.create 256; other = 0 }

let block_cell t ~func ~block =
  let key = (func, block) in
  match Hashtbl.find_opt t.block_tbl key with
  | Some c -> c
  | None ->
    let c = { count = 0; spec_reads = 0 } in
    Hashtbl.add t.block_tbl key c;
    c

(* [tier] defaults to 0 at the recording entry points so untiered
   callers (the plain `run`/`profile` paths) keep working unchanged;
   the tiered manager passes the executing variant's tier. *)
let site_cell t ~func ~site ~kind ~tier =
  let key = (site, kind, tier) in
  match Hashtbl.find_opt t.site_tbl key with
  | Some c -> c
  | None ->
    let c = { func; hits = 0; npe = 0; traps = 0; misses = 0 } in
    Hashtbl.add t.site_tbl key c;
    c

let hit_block t ~func ~block =
  let c = block_cell t ~func ~block in
  c.count <- c.count + 1

let hit_check ?(tier = 0) t ~func ~site ~kind =
  let c = site_cell t ~func ~site ~kind ~tier in
  c.hits <- c.hits + 1

let record_npe ?(tier = 0) t ~func ~site =
  let c = site_cell t ~func ~site ~kind:Cexplicit ~tier in
  c.npe <- c.npe + 1

let record_trap ?(tier = 0) t ~func ~site =
  let c = site_cell t ~func ~site ~kind:Cimplicit ~tier in
  c.traps <- c.traps + 1

let record_miss ?(tier = 0) t ~func ~site =
  let c = site_cell t ~func ~site ~kind:Cimplicit ~tier in
  c.misses <- c.misses + 1

let record_spec_read t ~func ~block =
  let c = block_cell t ~func ~block in
  c.spec_reads <- c.spec_reads + 1

let record_other_trap t = t.other <- t.other + 1

let kind_order = function Cexplicit -> 0 | Cimplicit -> 1 | Cbound -> 2

let kind_to_string = function
  | Cexplicit -> "explicit"
  | Cimplicit -> "implicit"
  | Cbound -> "bound"

let kind_of_string = function
  | "explicit" -> Some Cexplicit
  | "implicit" -> Some Cimplicit
  | "bound" -> Some Cbound
  | _ -> None

let sites t =
  Hashtbl.fold
    (fun (site, kind, tier) (c : site_cell) acc ->
      {
        sr_site = site;
        sr_func = c.func;
        sr_kind = kind;
        sr_tier = tier;
        sr_hits = c.hits;
        sr_npe = c.npe;
        sr_traps = c.traps;
        sr_misses = c.misses;
      }
      :: acc)
    t.site_tbl []
  |> List.sort (fun a b ->
         compare
           (a.sr_func, a.sr_site, kind_order a.sr_kind, a.sr_tier)
           (b.sr_func, b.sr_site, kind_order b.sr_kind, b.sr_tier))

let blocks t =
  Hashtbl.fold
    (fun (func, block) (c : block_cell) acc ->
      {
        br_func = func;
        br_block = block;
        br_count = c.count;
        br_spec_reads = c.spec_reads;
      }
      :: acc)
    t.block_tbl []
  |> List.sort (fun a b ->
         compare (a.br_func, a.br_block) (b.br_func, b.br_block))

let other_traps t = t.other

let total_hits t kind =
  Hashtbl.fold
    (fun (_, k, _) (c : site_cell) acc -> if k = kind then acc + c.hits else acc)
    t.site_tbl 0

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

let schema = "nullelim-profile/2"
let schema_version = 2

let to_json t : Obs_json.t =
  let site_json (r : site_row) =
    Obs_json.Obj
      [
        ("site", Obs_json.Int r.sr_site);
        ("func", Obs_json.Str r.sr_func);
        ("kind", Obs_json.Str (kind_to_string r.sr_kind));
        ("tier", Obs_json.Int r.sr_tier);
        ("hits", Obs_json.Int r.sr_hits);
        ("npe", Obs_json.Int r.sr_npe);
        ("traps", Obs_json.Int r.sr_traps);
        ("misses", Obs_json.Int r.sr_misses);
      ]
  in
  let block_json (r : block_row) =
    Obs_json.Obj
      [
        ("func", Obs_json.Str r.br_func);
        ("block", Obs_json.Int r.br_block);
        ("count", Obs_json.Int r.br_count);
        ("spec_reads", Obs_json.Int r.br_spec_reads);
      ]
  in
  Obs_json.Obj
    [
      ("schema", Obs_json.Str schema);
      ("schema_version", Obs_json.Int schema_version);
      ("sites", Obs_json.List (List.map site_json (sites t)));
      ("blocks", Obs_json.List (List.map block_json (blocks t)));
      ("other_traps", Obs_json.Int t.other);
    ]

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate (j : Obs_json.t) : (unit, string) result =
  let ( let* ) = Result.bind in
  let int_field obj name =
    match Obs_json.member name obj with
    | Some (Obs_json.Int _) -> Ok ()
    | Some _ -> Error (Printf.sprintf "field %S must be an integer" name)
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let str_field obj name =
    match Obs_json.member name obj with
    | Some (Obs_json.Str _) -> Ok ()
    | Some _ -> Error (Printf.sprintf "field %S must be a string" name)
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let* () =
    match Obs_json.member "schema" j with
    | Some (Obs_json.Str s) when s = schema -> Ok ()
    | Some (Obs_json.Str s) -> Error (Printf.sprintf "unknown schema %S" s)
    | Some _ -> Error "field \"schema\" must be a string"
    | None -> Error "missing field \"schema\""
  in
  let* () =
    match Obs_json.member "schema_version" j with
    | Some (Obs_json.Int v) when v = schema_version -> Ok ()
    | Some (Obs_json.Int v) ->
      Error (Printf.sprintf "unsupported schema_version %d" v)
    | Some _ -> Error "field \"schema_version\" must be an integer"
    | None -> Error "missing field \"schema_version\""
  in
  let* () =
    match Obs_json.member "sites" j with
    | Some (Obs_json.List rows) ->
      List.fold_left
        (fun acc row ->
          let* () = acc in
          let* () = int_field row "site" in
          let* () = str_field row "func" in
          let* () =
            match Obs_json.member "kind" row with
            | Some (Obs_json.Str k) -> (
              match kind_of_string k with
              | Some _ -> Ok ()
              | None -> Error (Printf.sprintf "unknown check kind %S" k))
            | _ -> Error "site row: field \"kind\" must be a string"
          in
          let* () = int_field row "tier" in
          let* () = int_field row "hits" in
          let* () = int_field row "npe" in
          let* () = int_field row "traps" in
          int_field row "misses")
        (Ok ()) rows
    | Some _ -> Error "field \"sites\" must be a list"
    | None -> Error "missing field \"sites\""
  in
  let* () =
    match Obs_json.member "blocks" j with
    | Some (Obs_json.List rows) ->
      List.fold_left
        (fun acc row ->
          let* () = acc in
          let* () = str_field row "func" in
          let* () = int_field row "block" in
          let* () = int_field row "count" in
          int_field row "spec_reads")
        (Ok ()) rows
    | Some _ -> Error "field \"blocks\" must be a list"
    | None -> Error "missing field \"blocks\""
  in
  int_field j "other_traps"
