(* See slo.mli.  Objectives are evaluated in the good/bad-event
   formulation: a latency objective counts an observation "good" when it
   lands at or below the threshold (resolved against the histogram's
   bucket bounds), an availability objective takes its good/bad counts
   from two counters.  [tick] samples the cumulative counts; burn rates
   come from windowed deltas of those samples, so the evaluator never
   needs the registry to support resetting. *)

type kind =
  | Latency of { metric : string; threshold : float }
  | Availability of { good : string; bad : string }

type objective = { o_name : string; o_kind : kind; o_target : float }

let latency ~name ~metric ~threshold ~target =
  if not (target >= 0. && target <= 1.) then
    invalid_arg "Slo.latency: target must be in [0,1]";
  { o_name = name; o_kind = Latency { metric; threshold }; o_target = target }

let availability ~name ~good ~bad ~target =
  if not (target >= 0. && target <= 1.) then
    invalid_arg "Slo.availability: target must be in [0,1]";
  { o_name = name; o_kind = Availability { good; bad }; o_target = target }

type status = Healthy | Degraded | Failing

let status_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Failing -> "failing"

let status_of_name = function
  | "healthy" -> Some Healthy
  | "degraded" -> Some Degraded
  | "failing" -> Some Failing
  | _ -> None

(* one cumulative sample: (timestamp, good events ever, bad events ever) *)
type sample = { s_ts : float; s_good : int; s_bad : int }

type tracked = { t_obj : objective; mutable t_samples : sample list (* newest first *) }

type t = {
  registry : Metrics.t;
  short_window : float;
  long_window : float;
  degraded_burn : float;
  failing_burn : float;
  tracked : tracked list;
  m : Mutex.t;
}

let create ?(short_window = 300.) ?(long_window = 3600.)
    ?(degraded_burn = 1.0) ?(failing_burn = 14.4) (registry : Metrics.t)
    (objectives : objective list) : t =
  if not (short_window > 0. && long_window >= short_window) then
    invalid_arg "Slo.create: want 0 < short_window <= long_window";
  {
    registry;
    short_window;
    long_window;
    degraded_burn;
    failing_burn;
    tracked = List.map (fun o -> { t_obj = o; t_samples = [] }) objectives;
    m = Mutex.create ();
  }

let objectives t = List.map (fun tr -> tr.t_obj) t.tracked

(* Cumulative (good, bad) for an objective right now. *)
let read_counts (r : Metrics.t) = function
  | Availability { good; bad } ->
    (Metrics.counter_total_any r good, Metrics.counter_total_any r bad)
  | Latency { metric; threshold } -> (
    match Metrics.histogram_merged_any r metric with
    | None -> (0, 0)
    | Some (buckets, counts, total, _sum) ->
      (* good = observations in buckets whose upper bound fits under the
         threshold; a threshold between bounds rounds down (conservative:
         borderline observations count as bad) *)
      let good = ref 0 in
      Array.iteri
        (fun i le -> if le <= threshold +. 1e-12 then good := !good + counts.(i))
        buckets;
      (!good, total - !good))

let tick ?now (t : t) : unit =
  let ts = match now with Some n -> n | None -> Unix.gettimeofday () in
  Mutex.lock t.m;
  List.iter
    (fun tr ->
      let good, bad = read_counts t.registry tr.t_obj.o_kind in
      let s = { s_ts = ts; s_good = good; s_bad = bad } in
      (* drop history beyond the long window, but always keep one sample
         at-or-older than the window edge so the edge delta stays exact *)
      let cutoff = ts -. t.long_window in
      let rec prune = function
        | a :: (b :: _ as rest) when b.s_ts >= cutoff -> a :: prune rest
        | a :: (_ :: _ as rest) when a.s_ts >= cutoff -> a :: prune rest
        | [ a ] -> [ a ]
        | a :: _ :: _ -> [ a ] (* a and everything older predate cutoff *)
        | [] -> []
      in
      tr.t_samples <- s :: prune tr.t_samples)
    t.tracked;
  Mutex.unlock t.m

type window_eval = { w_burn : float; w_total : int }

(* Delta over [now - w, now]: newest sample minus the newest sample at
   or older than the window edge (a sample exactly on the edge is the
   baseline — it is *excluded* from the window, events after it are in). *)
let eval_window (samples : sample list) ~(now : float) ~(w : float)
    ~(target : float) : window_eval =
  match samples with
  | [] -> { w_burn = 0.; w_total = 0 }
  | newest :: _ ->
    let edge = now -. w in
    let rec baseline = function
      | [] -> None
      | s :: rest -> if s.s_ts <= edge +. 1e-12 then Some s else baseline rest
    in
    let base =
      match baseline samples with
      | Some s -> s
      | None -> (
        (* history younger than the window: measure from the oldest
           sample we have *)
        match List.rev samples with oldest :: _ -> oldest | [] -> newest)
    in
    let good = newest.s_good - base.s_good in
    let bad = newest.s_bad - base.s_bad in
    let total = good + bad in
    if total <= 0 then { w_burn = 0.; w_total = 0 }
    else
      let err = float_of_int bad /. float_of_int total in
      let allowed = 1. -. target in
      let burn =
        if allowed <= 0. then (if err > 0. then Float.infinity else 0.)
        else err /. allowed
      in
      { w_burn = burn; w_total = total }

type report = {
  r_name : string;
  r_target : float;
  r_kind : kind;
  r_status : status;
  r_short_burn : float;
  r_long_burn : float;
  r_short_total : int;
  r_long_total : int;
}

let classify (t : t) ~short_burn ~long_burn : status =
  (* an alert needs *both* windows burning: the long window proves the
     problem is sustained, the short window proves it is still going on *)
  if short_burn >= t.failing_burn && long_burn >= t.failing_burn then Failing
  else if short_burn >= t.degraded_burn && long_burn >= t.degraded_burn then
    Degraded
  else Healthy

let evaluate ?now (t : t) : report list =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  Mutex.lock t.m;
  let reports =
    List.map
      (fun tr ->
        let target = tr.t_obj.o_target in
        let short =
          eval_window tr.t_samples ~now ~w:t.short_window ~target
        in
        let long = eval_window tr.t_samples ~now ~w:t.long_window ~target in
        {
          r_name = tr.t_obj.o_name;
          r_target = target;
          r_kind = tr.t_obj.o_kind;
          r_status =
            classify t ~short_burn:short.w_burn ~long_burn:long.w_burn;
          r_short_burn = short.w_burn;
          r_long_burn = long.w_burn;
          r_short_total = short.w_total;
          r_long_total = long.w_total;
        })
      t.tracked
  in
  Mutex.unlock t.m;
  reports

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let schema = "nullelim-slo/1"
let schema_version = 1

let kind_name = function
  | Latency _ -> "latency"
  | Availability _ -> "availability"

let json_burn (b : float) : Obs_json.t =
  (* burns can be +inf when target = 1; JSON has no Inf literal, so cap
     at a sentinel large enough to read as "off the chart" *)
  Obs_json.Float (if Float.is_finite b then b else 1e18)

let report_to_json (r : report) : Obs_json.t =
  Obs_json.Obj
    ([
       ("name", Obs_json.Str r.r_name);
       ("kind", Obs_json.Str (kind_name r.r_kind));
       ("target", Obs_json.Float r.r_target);
     ]
    @ (match r.r_kind with
      | Latency { metric; threshold } ->
        [
          ("metric", Obs_json.Str metric);
          ("threshold", Obs_json.Float threshold);
        ]
      | Availability { good; bad } ->
        [ ("good", Obs_json.Str good); ("bad", Obs_json.Str bad) ])
    @ [
        ("status", Obs_json.Str (status_name r.r_status));
        ("short_burn", json_burn r.r_short_burn);
        ("long_burn", json_burn r.r_long_burn);
        ("short_total", Obs_json.Int r.r_short_total);
        ("long_total", Obs_json.Int r.r_long_total);
      ])

let to_json ?now (t : t) : Obs_json.t =
  let reports = evaluate ?now t in
  let worst =
    List.fold_left
      (fun acc r ->
        match (acc, r.r_status) with
        | Failing, _ | _, Failing -> Failing
        | Degraded, _ | _, Degraded -> Degraded
        | Healthy, Healthy -> Healthy)
      Healthy reports
  in
  Obs_json.Obj
    [
      ("schema", Obs_json.Str schema);
      ("schema_version", Obs_json.Int schema_version);
      ("short_window", Obs_json.Float t.short_window);
      ("long_window", Obs_json.Float t.long_window);
      ("degraded_burn", Obs_json.Float t.degraded_burn);
      ("failing_burn", Obs_json.Float t.failing_burn);
      ("status", Obs_json.Str (status_name worst));
      ("objectives", Obs_json.List (List.map report_to_json reports));
    ]

let validate (j : Obs_json.t) : (unit, string) result =
  let ( let* ) r f = Result.bind r f in
  let num name o =
    match Obs_json.member name o with
    | Some (Obs_json.Float f) -> Ok f
    | Some (Obs_json.Int i) -> Ok (float_of_int i)
    | _ -> Error (Printf.sprintf "missing numeric %s" name)
  in
  let* () =
    match Obs_json.member "schema" j with
    | Some (Obs_json.Str s) when s = schema -> Ok ()
    | Some (Obs_json.Str s) ->
      Error (Printf.sprintf "unsupported schema %s (want %s)" s schema)
    | _ -> Error "missing schema"
  in
  let* sw = num "short_window" j in
  let* lw = num "long_window" j in
  let* () =
    if sw > 0. && lw >= sw then Ok ()
    else Error "want 0 < short_window <= long_window"
  in
  let* _ = num "degraded_burn" j in
  let* _ = num "failing_burn" j in
  let* () =
    match Obs_json.member "status" j with
    | Some (Obs_json.Str s) when status_of_name s <> None -> Ok ()
    | _ -> Error "status must be healthy/degraded/failing"
  in
  match Obs_json.member "objectives" j with
  | Some (Obs_json.List objs) ->
    let check o =
      let* name =
        match Obs_json.member "name" o with
        | Some (Obs_json.Str s) -> Ok s
        | _ -> Error "objective missing name"
      in
      let fail msg = Error (Printf.sprintf "objective %s: %s" name msg) in
      let* () =
        match Obs_json.member "kind" o with
        | Some (Obs_json.Str ("latency" | "availability")) -> Ok ()
        | _ -> fail "kind must be latency or availability"
      in
      let* target = num "target" o in
      let* () =
        if target >= 0. && target <= 1. then Ok ()
        else fail "target must be in [0,1]"
      in
      let* () =
        match Obs_json.member "status" o with
        | Some (Obs_json.Str s) when status_of_name s <> None -> Ok ()
        | _ -> fail "status must be healthy/degraded/failing"
      in
      let* sb = num "short_burn" o in
      let* lb = num "long_burn" o in
      let* () =
        if sb >= 0. && lb >= 0. then Ok () else fail "burns must be >= 0"
      in
      match
        (Obs_json.member "short_total" o, Obs_json.member "long_total" o)
      with
      | Some (Obs_json.Int s), Some (Obs_json.Int l) when s >= 0 && l >= 0
        ->
        Ok ()
      | _ -> fail "totals must be non-negative integers"
    in
    List.fold_left
      (fun acc o ->
        let* () = acc in
        check o)
      (Ok ()) objs
  | _ -> Error "missing objectives list"
