(** Typed metrics registry (counters / gauges / histograms with labels)
    with a stable, versioned JSON snapshot schema.  The single sink for
    the pass manager's timings/counters, the data-flow solver's work
    counters and the interpreter's dynamic counters. *)

type t
type labels = (string * string) list

type counter
type gauge
type histogram

val schema_version : int

val create : unit -> t
val global : t

val counter : t -> ?labels:labels -> string -> counter
(** Find-or-register; same (name, labels) always yields the same
    instrument.  @raise Invalid_argument if the name is already
    registered as a different type. *)

val inc : counter -> int -> unit
val counter_value : counter -> int

val gauge : t -> ?labels:labels -> string -> gauge
val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float

val default_buckets : float array
val histogram : t -> ?labels:labels -> ?buckets:float array -> string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val snapshot : t -> Obs_json.t
(** Deterministic snapshot:
    [{"schema_version":N,"counters":[{"name","labels","value"}...],
      "gauges":[...],"histograms":[{"name","labels","count","sum",
      "buckets":[{"le","count"}...]}...]}]. *)

val validate : Obs_json.t -> (unit, string) result
(** Structural validation of a snapshot against the schema above. *)
