(** Typed metrics registry (counters / gauges / histograms with labels)
    with a stable, versioned JSON snapshot schema.  The single sink for
    the pass manager's timings/counters, the data-flow solver's work
    counters and the interpreter's dynamic counters.

    Instrument identity is [(name, sorted labels)]: asking again for the
    same identity returns the same instrument, so instrumented code can
    re-request instruments instead of threading them around.

    Domain safety: a registry may be shared across domains.  Counters
    and histograms are sharded per domain — {!counter} / {!histogram}
    return the {e calling domain's} cell, {!inc} / {!observe} are plain
    unsynchronized writes on it, and {!snapshot} / {!counter_total} /
    {!percentiles} merge every domain's shard by summation.  Gauges have
    set-semantics and are a single shared atomic cell.  Merged reads
    taken while writer domains are live may miss in-flight bumps (cell
    reads are word-atomic, never torn); once the writers quiesce, merged
    values are exact.  See DESIGN.md §14. *)

type t
(** A registry.  [Compiler.compile] creates a private one per
    compilation, so concurrent compiles on different domains never share
    instruments. *)

type labels = (string * string) list
(** Label pairs; order is irrelevant (identity sorts them). *)

type counter
type gauge
type histogram

val schema_version : int
(** Version stamped into (and required of) every snapshot. *)

val create : unit -> t
(** A fresh, empty registry. *)

val global : t
(** A process-wide registry for callers that want one; nothing in the
    library records to it implicitly. *)

val counter : t -> ?labels:labels -> string -> counter
(** Find-or-register; same (name, labels) from the same domain always
    yields the same cell.  @raise Invalid_argument if the name is
    already registered as a different type. *)

val inc : counter -> int -> unit
(** Add to a monotone counter (the calling domain's cell; lock-free). *)

val counter_value : counter -> int
(** This cell's (i.e. one domain's) contribution; {!counter_total} for
    the merged value. *)

val counter_total : t -> ?labels:labels -> string -> int
(** Sum of the counter across every domain's shard (0 if never
    registered). *)

val gauge : t -> ?labels:labels -> string -> gauge
(** Find-or-register a gauge (a settable float); identity rules as for
    {!counter}. *)

val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float

val default_buckets : float array
(** Exponential seconds-scale bucket bounds used when [?buckets] is
    omitted. *)

val log_buckets : lo:float -> hi:float -> per_decade:int -> float array
(** Log-spaced bucket bounds from [lo] up to at least [hi] with
    [per_decade] bounds per decade — e.g.
    [log_buckets ~lo:1e-6 ~hi:30. ~per_decade:10] gives ~23% spacing,
    bounding {!percentiles} error to one such step.
    @raise Invalid_argument unless [0 < lo < hi] and [per_decade >= 1]. *)

val histogram : t -> ?labels:labels -> ?buckets:float array -> string -> histogram
(** Find-or-register a histogram with cumulative buckets; identity rules
    as for {!counter}.  The first registration fixes the bucket bounds;
    later [?buckets] for the same identity are ignored. *)

val observe : histogram -> float -> unit
(** Record one sample: bumps the count, the sum and the one bucket
    admitting the value (the calling domain's cells; lock-free). *)

val histogram_count : histogram -> int
(** This domain's sample count; {!histogram_total_count} for merged. *)

val histogram_sum : histogram -> float

val histogram_total_count : t -> ?labels:labels -> string -> int
(** Merged sample count across every domain's shard. *)

val histogram_merged :
  t -> ?labels:labels -> string -> (float array * int array * int * float) option
(** The named histogram merged across every domain's shard:
    [(bucket bounds, per-bucket counts, total count, sum)] — the raw
    material {!percentile} and the SLO burn-rate evaluator work from.
    [None] if no histogram is registered under the identity.  The
    counts array has one extra overflow slot. *)

val histogram_merged_any :
  t -> string -> (float array * int array * int * float) option
(** Like {!histogram_merged}, additionally merged across {e every label
    set} registered under [name] (label sets whose bucket bounds differ
    from the first registration are skipped).  This is how an SLO over
    e.g. [svc_compile_seconds] aggregates the per-tenant series. *)

val counter_total_any : t -> string -> int
(** Sum of the named counter across every label set and every domain. *)

val label_values : t -> string -> string -> string list
(** [label_values r name key] — the distinct values the label [key]
    takes across every instrument registered under [name], sorted.
    Enumerates e.g. the tenants a per-tenant counter family has seen. *)

val percentile : t -> ?labels:labels -> string -> float -> float
(** [percentile r name q] (with [0 <= q <= 1]) extracts the q-quantile
    of the named histogram merged across domains: the upper bound of the
    first bucket whose cumulative count reaches [ceil (q * total)] — an
    overestimate by at most one bucket width.  Returns [nan] on an empty
    or unregistered histogram and [infinity] when the quantile lands in
    the overflow bucket. *)

val percentiles : t -> ?labels:labels -> string -> float list -> float list
(** {!percentile} at several quantiles over one merge. *)

val percentile_of :
  buckets:float array -> counts:int array -> total:int -> float -> float
(** The rank-extraction primitive behind {!percentile}, usable on any
    bucket/count pair — e.g. on a {e windowed delta} of two
    {!histogram_merged} samples (the SLO evaluator's case). *)

val snapshot : t -> Obs_json.t
(** Deterministic merged snapshot (all domains' shards summed):
    [{"schema_version":N,"counters":[{"name","labels","value"}...],
      "gauges":[...],"histograms":[{"name","labels","count","sum",
      "buckets":[{"le","count"}...]}...]}]. *)

val validate : Obs_json.t -> (unit, string) result
(** Structural validation of a snapshot against the schema above. *)
