(** Typed metrics registry (counters / gauges / histograms with labels)
    with a stable, versioned JSON snapshot schema.  The single sink for
    the pass manager's timings/counters, the data-flow solver's work
    counters and the interpreter's dynamic counters.

    Instrument identity is [(name, sorted labels)]: asking again for the
    same identity returns the same instrument, so instrumented code can
    re-request instruments instead of threading them around. *)

type t
(** A registry.  [Compiler.compile] creates a private one per
    compilation, so concurrent compiles on different domains never share
    instruments. *)

type labels = (string * string) list
(** Label pairs; order is irrelevant (identity sorts them). *)

type counter
type gauge
type histogram

val schema_version : int
(** Version stamped into (and required of) every snapshot. *)

val create : unit -> t
(** A fresh, empty registry. *)

val global : t
(** A process-wide registry for callers that want one; nothing in the
    library records to it implicitly. *)

val counter : t -> ?labels:labels -> string -> counter
(** Find-or-register; same (name, labels) always yields the same
    instrument.  @raise Invalid_argument if the name is already
    registered as a different type. *)

val inc : counter -> int -> unit
(** Add to a monotone counter. *)

val counter_value : counter -> int

val gauge : t -> ?labels:labels -> string -> gauge
(** Find-or-register a gauge (a settable float); identity rules as for
    {!counter}. *)

val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float

val default_buckets : float array
(** Exponential seconds-scale bucket bounds used when [?buckets] is
    omitted. *)

val histogram : t -> ?labels:labels -> ?buckets:float array -> string -> histogram
(** Find-or-register a histogram with cumulative buckets; identity rules
    as for {!counter}. *)

val observe : histogram -> float -> unit
(** Record one sample: bumps the count, the sum and every bucket whose
    bound admits the value. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val snapshot : t -> Obs_json.t
(** Deterministic snapshot:
    [{"schema_version":N,"counters":[{"name","labels","value"}...],
      "gauges":[...],"histograms":[{"name","labels","count","sum",
      "buckets":[{"le","count"}...]}...]}]. *)

val validate : Obs_json.t -> (unit, string) result
(** Structural validation of a snapshot against the schema above. *)
