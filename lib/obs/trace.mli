(** Trace spans emitting Chrome trace-event JSON
    ([chrome://tracing]-loadable).  Inactive by default; armed by
    [NULLELIM_TRACE=path] or {!start_to_file}/{!start}.  An inactive
    {!span} costs one branch.

    All state is domain-local: each domain arms, collects and stops its
    own stream, so compile-service workers never interleave their spans
    ([NULLELIM_TRACE] arms only the domain that read it — the initial
    one). *)

type event = {
  ev_name : string;   (** span label, e.g. a pass or function name *)
  ev_cat : string;    (** category ("compile", "pass", "solver", …) *)
  ev_ts_us : float;   (** start, microseconds since the sink started *)
  ev_dur_us : float;  (** duration in microseconds; 0 for instants *)
  ev_depth : int;     (** nesting depth at the time the span opened *)
  ev_args : (string * Obs_json.t) list;  (** extra trace-event [args] *)
}

val enabled : unit -> bool
(** Is a sink armed on the calling domain? *)

val depth : unit -> int
(** Current span nesting depth; 0 whenever the stream is balanced. *)

val start : unit -> unit
(** Collect in memory (for tests); retrieve with {!stop}. *)

val start_to_file : string -> unit
(** Collect and write the file when {!stop} (or program exit) happens. *)

val stop : unit -> event list
(** Disarm, write the file if one was armed, return events in start
    order.  Returns [[]] when tracing was not active. *)

val span :
  ?cat:string ->
  ?args:(string * Obs_json.t) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [span name f] runs [f], recording a complete event when active.
    Exception-safe: the span closes and the exception is re-raised. *)

val instant :
  ?cat:string -> ?args:(string * Obs_json.t) list -> string -> unit
(** Zero-duration marker event. *)

val to_json : event list -> Obs_json.t
(** The Chrome trace-event document ([{"traceEvents": [...]}]); each
    event becomes a complete event ([ph:"X"]). *)

val write : string -> event list -> unit
(** [write path events] writes {!to_json} to [path]. *)
