(** Trace spans emitting Chrome trace-event JSON
    ([chrome://tracing]-loadable).  Inactive by default; armed by
    [NULLELIM_TRACE=path] or {!start_to_file}/{!start}.  An inactive
    {!span} costs one branch. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts_us : float;
  ev_dur_us : float;
  ev_depth : int;
  ev_args : (string * Obs_json.t) list;
}

val enabled : unit -> bool
val depth : unit -> int
(** Current span nesting depth; 0 whenever the stream is balanced. *)

val start : unit -> unit
(** Collect in memory (for tests); retrieve with {!stop}. *)

val start_to_file : string -> unit
(** Collect and write the file when {!stop} (or program exit) happens. *)

val stop : unit -> event list
(** Disarm, write the file if one was armed, return events in start
    order.  Returns [[]] when tracing was not active. *)

val span :
  ?cat:string ->
  ?args:(string * Obs_json.t) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [span name f] runs [f], recording a complete event when active.
    Exception-safe: the span closes and the exception is re-raised. *)

val instant :
  ?cat:string -> ?args:(string * Obs_json.t) list -> string -> unit
(** Zero-duration marker event. *)

val to_json : event list -> Obs_json.t
val write : string -> event list -> unit
