(* See timeline.mli.  A timeline is the ts-sorted slice of a flight
   dump sharing one request id — taken from the event's causal context
   or, for the Req_* lifecycle kinds, the [a] payload (the two always
   agree when a context was in force; the payload also covers events
   recorded before the context machinery existed). *)

type phase = Completed | Shed | Inflight

let phase_name = function
  | Completed -> "completed"
  | Shed -> "shed"
  | Inflight -> "inflight"

let phase_of_name = function
  | "completed" -> Some Completed
  | "shed" -> Some Shed
  | "inflight" -> Some Inflight
  | _ -> None

type t = {
  tl_request : int;
  tl_tenant : int;
  tl_events : Recorder.event list; (* ts-sorted *)
  tl_enqueue : float option;
  tl_dequeue : float option;
  tl_done : float option;
  tl_shed : float option;
}

let request_of_event (e : Recorder.event) : int option =
  if e.Recorder.ev_ctx.Ctx.cx_request >= 0 then
    Some e.Recorder.ev_ctx.Ctx.cx_request
  else
    match e.Recorder.ev_kind with
    | Recorder.Req_enqueue | Recorder.Req_start | Recorder.Req_done
    | Recorder.Req_shed ->
      if e.Recorder.ev_a >= 0 then Some e.Recorder.ev_a else None
    | _ -> None

let of_events (events : Recorder.event list) : t list =
  let by_req : (int, Recorder.event list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun e ->
      match request_of_event e with
      | None -> ()
      | Some req -> (
        match Hashtbl.find_opt by_req req with
        | Some l -> l := e :: !l
        | None -> Hashtbl.add by_req req (ref [ e ])))
    events;
  Hashtbl.fold
    (fun req evs acc ->
      let evs =
        List.stable_sort
          (fun a b -> compare a.Recorder.ev_ts b.Recorder.ev_ts)
          (List.rev !evs)
      in
      let tenant =
        List.fold_left
          (fun acc e ->
            if acc >= 0 then acc else e.Recorder.ev_ctx.Ctx.cx_tenant)
          (-1) evs
      in
      let first kind =
        List.find_map
          (fun e ->
            if e.Recorder.ev_kind = kind then Some e.Recorder.ev_ts else None)
          evs
      in
      {
        tl_request = req;
        tl_tenant = tenant;
        tl_events = evs;
        tl_enqueue = first Recorder.Req_enqueue;
        tl_dequeue = first Recorder.Req_start;
        tl_done = first Recorder.Req_done;
        tl_shed = first Recorder.Req_shed;
      }
      :: acc)
    by_req []
  |> List.sort (fun a b -> compare a.tl_request b.tl_request)

let phase (tl : t) : phase =
  if tl.tl_done <> None then Completed
  else if tl.tl_shed <> None then Shed
  else Inflight

let queue_wait (tl : t) : float option =
  match (tl.tl_enqueue, tl.tl_dequeue) with
  | Some e, Some d -> Some (d -. e)
  | _ -> None

let service_time (tl : t) : float option =
  match (tl.tl_dequeue, tl.tl_done) with
  | Some s, Some d -> Some (d -. s)
  | _ -> None

let total_latency (tl : t) : float option =
  match (tl.tl_enqueue, tl.tl_done) with
  | Some e, Some d -> Some (d -. e)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Completeness                                                        *)
(* ------------------------------------------------------------------ *)

let check_complete ?(dropped = 0) (tls : t list) : (unit, string) result =
  (* With a wrapped ring the oldest spans are gone by design; a
     completed request missing its enqueue is then expected, not a
     propagation bug, so the check only binds when nothing was lost. *)
  if dropped > 0 then Ok ()
  else
    let rec go = function
      | [] -> Ok ()
      | tl :: rest -> (
        let fail msg =
          Error (Printf.sprintf "request %d: %s" tl.tl_request msg)
        in
        match phase tl with
        | Shed | Inflight -> go rest
        | Completed -> (
          match (tl.tl_enqueue, tl.tl_dequeue, tl.tl_done) with
          | None, _, _ -> fail "completed without a req_enqueue span"
          | _, None, _ -> fail "completed without a req_start span"
          | _, _, None -> go rest (* unreachable: Completed has tl_done *)
          | Some e, Some s, Some d ->
            if not (e <= s +. 1e-9 && s <= d +. 1e-9) then
              fail
                (Printf.sprintf
                   "spans out of causal order (enqueue %.6f, start %.6f, \
                    done %.6f)"
                   e s d)
            else if
              (* every attributed span must agree on the tenant *)
              List.exists
                (fun ev ->
                  let t = ev.Recorder.ev_ctx.Ctx.cx_tenant in
                  t >= 0 && tl.tl_tenant >= 0 && t <> tl.tl_tenant)
                tl.tl_events
            then fail "spans disagree on tenant"
            else if
              List.exists
                (fun ev ->
                  let r = ev.Recorder.ev_ctx.Ctx.cx_request in
                  r >= 0 && r <> tl.tl_request)
                tl.tl_events
            then fail "spans disagree on request id"
            else go rest))
    in
    go tls

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let schema = "nullelim-timeline/1"
let schema_version = 1

let opt_f name = function
  | None -> []
  | Some v -> [ (name, Obs_json.Float v) ]

let timeline_to_json (tl : t) : Obs_json.t =
  Obs_json.Obj
    ([
       ("request", Obs_json.Int tl.tl_request);
       ("tenant", Obs_json.Int tl.tl_tenant);
       ("phase", Obs_json.Str (phase_name (phase tl)));
     ]
    @ opt_f "enqueue_ts" tl.tl_enqueue
    @ opt_f "dequeue_ts" tl.tl_dequeue
    @ opt_f "done_ts" tl.tl_done
    @ opt_f "shed_ts" tl.tl_shed
    @ opt_f "queue_wait" (queue_wait tl)
    @ opt_f "service_time" (service_time tl)
    @ opt_f "total_latency" (total_latency tl)
    @ [
        ( "spans",
          Obs_json.List
            (List.map
               (fun e ->
                 Obs_json.Obj
                   [
                     ("ts", Obs_json.Float e.Recorder.ev_ts);
                     ("domain", Obs_json.Int e.Recorder.ev_domain);
                     ( "kind",
                       Obs_json.Str (Recorder.kind_name e.Recorder.ev_kind)
                     );
                     ("span", Obs_json.Int e.Recorder.ev_ctx.Ctx.cx_span);
                     ( "parent",
                       Obs_json.Int e.Recorder.ev_ctx.Ctx.cx_parent );
                   ])
               tl.tl_events) );
      ])

let to_json ?(dropped = 0) (tls : t list) : Obs_json.t =
  let phases = List.map phase tls in
  let count p = List.length (List.filter (( = ) p) phases) in
  Obs_json.Obj
    [
      ("schema", Obs_json.Str schema);
      ("schema_version", Obs_json.Int schema_version);
      ("dropped", Obs_json.Int dropped);
      ("requests", Obs_json.Int (List.length tls));
      ("completed", Obs_json.Int (count Completed));
      ("shed", Obs_json.Int (count Shed));
      ("inflight", Obs_json.Int (count Inflight));
      ("timelines", Obs_json.List (List.map timeline_to_json tls));
    ]

let validate (j : Obs_json.t) : (unit, string) result =
  let ( let* ) r f = Result.bind r f in
  let* () =
    match Obs_json.member "schema" j with
    | Some (Obs_json.Str s) when s = schema -> Ok ()
    | Some (Obs_json.Str s) ->
      Error (Printf.sprintf "unsupported schema %s (want %s)" s schema)
    | _ -> Error "missing schema"
  in
  let int_ge0 name =
    match Obs_json.member name j with
    | Some (Obs_json.Int i) when i >= 0 -> Ok i
    | _ -> Error (Printf.sprintf "%s must be a non-negative integer" name)
  in
  let* _ = int_ge0 "dropped" in
  let* total = int_ge0 "requests" in
  let* c = int_ge0 "completed" in
  let* s = int_ge0 "shed" in
  let* i = int_ge0 "inflight" in
  let* () =
    if c + s + i = total then Ok ()
    else Error "completed + shed + inflight <> requests"
  in
  match Obs_json.member "timelines" j with
  | Some (Obs_json.List tls) ->
    let* n =
      List.fold_left
        (fun acc tl ->
          let* n = acc in
          let* req =
            match Obs_json.member "request" tl with
            | Some (Obs_json.Int r) when r >= 0 -> Ok r
            | _ -> Error "timeline missing request id"
          in
          let fail msg =
            Error (Printf.sprintf "request %d: %s" req msg)
          in
          let* () =
            match Obs_json.member "phase" tl with
            | Some (Obs_json.Str p) when phase_of_name p <> None -> Ok ()
            | _ -> fail "phase must be completed/shed/inflight"
          in
          let* () =
            match Obs_json.member "spans" tl with
            | Some (Obs_json.List spans) ->
              if
                List.for_all
                  (fun sp ->
                    match
                      ( Obs_json.member "ts" sp,
                        Obs_json.member "kind" sp )
                    with
                    | ( Some (Obs_json.Float _ | Obs_json.Int _),
                        Some (Obs_json.Str k) ) ->
                      Recorder.kind_of_name k <> None
                    | _ -> false)
                  spans
              then Ok ()
              else fail "span missing ts/kind"
            | _ -> fail "missing spans list"
          in
          Ok (n + 1))
        (Ok 0) tls
    in
    if n = total then Ok () else Error "requests count <> timelines length"
  | _ -> Error "missing timelines list"
