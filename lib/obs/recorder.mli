(** Flight recorder: a fixed-size, lock-free ring buffer of timestamped
    runtime events — tier promotions/demotions, trap firings, code-cache
    traffic, queue movement — cheap enough to leave on in production
    (one enabled-flag load, four array stores and a clock read per
    event).

    Each domain records into its own ring ({!Domain_shard}): the hot
    path takes no lock and performs no CAS, and once a ring is full new
    events overwrite the oldest ({!dropped} counts the overwritten
    ones).  {!dump} merges every domain's ring into one timestamp-sorted
    stream; merging while writers are live is best-effort (a
    concurrently overwritten slot can surface with mixed fields), after
    quiescence it is exact.  See DESIGN.md §14. *)

type kind =
  | Tier_promote  (** [a] = tier installed, [b] = pending deopt sites *)
  | Tier_demote   (** [a] = trapping site id *)
  | Trap_fired    (** [a] = site id *)
  | Cache_hit     (** [a] = cache shard index *)
  | Cache_miss    (** [a] = cache shard index *)
  | Cache_evict   (** [a] = cache shard index *)
  | Enqueue       (** [a] = queue depth after the push *)
  | Dequeue       (** [a] = queue depth after the pop *)
  | Req_enqueue   (** [a] = request id *)
  | Req_start     (** [a] = request id *)
  | Req_done      (** [a] = request id *)
  | Mark          (** free-form; [a]/[b] caller-defined *)

type event = {
  ev_ts : float;      (** absolute seconds (Unix.gettimeofday) *)
  ev_domain : int;    (** recording domain's id *)
  ev_kind : kind;
  ev_a : int;
  ev_b : int;
}

type t

val create : ?capacity:int -> unit -> t
(** A recorder whose per-domain rings hold [capacity] events each
    (default 4096).  Enabled from birth. *)

val global : t
(** The process-wide recorder the runtime layers record into by
    default. *)

val record : ?a:int -> ?b:int -> t -> kind -> unit
(** Append one event to the calling domain's ring (no-op when
    disabled). *)

val set_enabled : t -> bool -> unit
(** Disabling reduces {!record} to one atomic load + branch — the knob
    the overhead bench flips. *)

val is_enabled : t -> bool

val capacity : t -> int

val dump : t -> event list
(** All retained events, merged across domains, sorted by timestamp. *)

val dropped : t -> int
(** Events overwritten because a ring wrapped, summed over rings. *)

val clear : t -> unit
(** Reset every ring (and the drop count).  Only meaningful while no
    other domain is recording. *)

val kind_name : kind -> string

val schema : string
(** ["nullelim-flight/1"]. *)

val to_json : t -> Obs_json.t
(** [{"schema":"nullelim-flight/1","schema_version":1,"capacity":C,
      "dropped":D,"events":[{"ts","domain","kind","a","b"}…]}] with
    events as in {!dump}. *)

val validate : Obs_json.t -> (unit, string) result
(** Structural validation of a {!to_json} document. *)

val to_trace : t -> Trace.event list
(** The retained events as zero-duration Chrome trace instants
    (timestamps rebased to the earliest event), convertible with
    {!Trace.to_json} / {!Trace.write}. *)
