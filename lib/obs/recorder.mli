(** Flight recorder: a fixed-size, lock-free ring buffer of timestamped
    runtime events — tier promotions/demotions, trap firings, code-cache
    traffic, queue movement, request lifecycle — cheap enough to leave
    on in production (one enabled-flag load, a handful of array stores
    and a clock read per event).

    Each domain records into its own ring ({!Domain_shard}): the hot
    path takes no lock and performs no CAS, and once a ring is full new
    events overwrite the oldest ({!dropped} counts the overwritten
    ones).  {!dump} merges every domain's ring into one timestamp-sorted
    stream; merging while writers are live is best-effort (a
    concurrently overwritten slot can surface with mixed fields), after
    quiescence it is exact.

    Every event additionally carries a causal {!Ctx.t} — tenant id,
    request id, span and parent span — taken from the explicit [?ctx]
    argument or, by default, the recording domain's ambient
    {!Ctx.current}.  That is what lets a flight dump be sliced into
    per-request timelines ({!Timeline}).  See DESIGN.md §14–15. *)

type kind =
  | Tier_promote  (** [a] = tier installed, [b] = pending deopt sites *)
  | Tier_demote   (** [a] = trapping site id *)
  | Trap_fired    (** [a] = site id *)
  | Cache_hit     (** [a] = cache shard index *)
  | Cache_miss    (** [a] = cache shard index *)
  | Cache_evict   (** [a] = cache shard index *)
  | Enqueue       (** [a] = queue depth after the push *)
  | Dequeue       (** [a] = queue depth after the pop *)
  | Req_enqueue   (** [a] = request id *)
  | Req_start     (** [a] = request id, [b] = worker *)
  | Req_done      (** [a] = request id, [b] = worker *)
  | Req_shed      (** [a] = request id (or -1 if never minted),
                      [b] = 0 queue full / 1 tenant cap *)
  | Mark          (** free-form; [a]/[b] caller-defined *)

type event = {
  ev_ts : float;      (** absolute seconds (Unix.gettimeofday) *)
  ev_domain : int;    (** recording domain's id *)
  ev_kind : kind;
  ev_a : int;
  ev_b : int;
  ev_ctx : Ctx.t;     (** causal context in force when recorded *)
}

type t

val create : ?capacity:int -> unit -> t
(** A recorder whose per-domain rings hold [capacity] events each
    (default 4096).  Enabled from birth. *)

val global : t
(** The process-wide recorder the runtime layers record into by
    default. *)

val record : ?ctx:Ctx.t -> ?a:int -> ?b:int -> t -> kind -> unit
(** Append one event to the calling domain's ring (no-op when
    disabled).  [ctx] defaults to the domain's ambient
    {!Ctx.current}. *)

val set_enabled : t -> bool -> unit
(** Disabling reduces {!record} to one atomic load + branch — the knob
    the overhead bench flips. *)

val is_enabled : t -> bool

val capacity : t -> int

val dump : t -> event list
(** All retained events, merged across domains, sorted by timestamp. *)

val dropped : t -> int
(** Events overwritten because a ring wrapped, summed over rings. *)

val clear : t -> unit
(** Reset every ring (and the drop count).  Only meaningful while no
    other domain is recording. *)

val record_metrics : ?registry:Metrics.t -> t -> unit
(** Export the recorder's health into a metrics registry (default
    {!Metrics.global}): gauges [flight_recorder_dropped] (events
    overwritten so far — silent data loss made visible in every
    snapshot) and [flight_recorder_capacity]. *)

val kind_name : kind -> string

val kind_of_name : string -> kind option
(** Inverse of {!kind_name} ([None] for unknown names). *)

val schema : string
(** ["nullelim-flight/1"]. *)

val to_json : t -> Obs_json.t
(** [{"schema":"nullelim-flight/1","schema_version":1,"capacity":C,
      "dropped":D,"events":[{"ts","domain","kind","a","b",
      "tenant","request","span","parent"}…]}] with events as in
    {!dump}.  When [D > 0] a ["warning"] string member calls out that
    the oldest part of the timeline was overwritten. *)

val validate : Obs_json.t -> (unit, string) result
(** Structural validation of a {!to_json} document (context fields are
    optional for pre-context dumps). *)

val to_trace : t -> Trace.event list
(** The retained events as zero-duration Chrome trace instants
    (timestamps rebased to the earliest event), convertible with
    {!Trace.to_json} / {!Trace.write}.  Attributed events carry their
    tenant/request ids as args. *)
