(** Low-overhead trace spans with Chrome trace-event output.

    A span wraps a computation and, when tracing is active, records a
    complete event ([ph:"X"]) with microsecond wall-clock timestamp and
    duration; the resulting file loads directly into [chrome://tracing]
    or [ui.perfetto.dev].  When tracing is inactive — the default — a
    span is a single [bool] test plus a tail call, so instrumented code
    pays nothing measurable.

    Activation:
    - environment: [NULLELIM_TRACE=path] arms collection at program start
      and writes [path] at exit;
    - programmatic: {!start_to_file} (same behaviour, e.g. for a
      [--trace] CLI flag) or {!start}/{!stop} for in-memory collection
      (used by the test suite).

    Spans nest lexically; {!depth} exposes the current nesting depth so
    tests can assert the stream is balanced. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts_us : float;   (** start, microseconds since collection started *)
  ev_dur_us : float;
  ev_depth : int;     (** nesting depth at span entry (0 = top level) *)
  ev_args : (string * Obs_json.t) list;
}

type sink = { mutable events : event list; mutable count : int; file : string option }

(* All collection state is domain-local: arming tracing on one domain
   (the CLI main domain, a test) never makes another domain's spans
   race on the sink.  Worker domains of the compile service therefore
   start with tracing disarmed, and a span there costs one DLS read. *)
type state = {
  mutable active : sink option;
  mutable cur_depth : int;
  mutable t0_us : float;
}

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { active = None; cur_depth = 0; t0_us = 0. })

let state () = Domain.DLS.get state_key

(** Cap on collected events: a runaway tracing session degrades into
    dropping the tail rather than exhausting memory. *)
let max_events = 2_000_000

let now_us () = Unix.gettimeofday () *. 1e6

let enabled () = (state ()).active <> None
let depth () = (state ()).cur_depth

let start_sink file =
  let st = state () in
  st.t0_us <- now_us ();
  st.cur_depth <- 0;
  st.active <- Some { events = []; count = 0; file }

let start () = start_sink None
let start_to_file path = start_sink (Some path)

let record_event st e =
  match st.active with
  | Some s when s.count < max_events ->
    s.events <- e :: s.events;
    s.count <- s.count + 1
  | Some _ | None -> ()

let span ?(cat = "nullelim") ?(args = []) name f =
  let st = state () in
  match st.active with
  | None -> f ()
  | Some _ ->
    let d = st.cur_depth in
    st.cur_depth <- d + 1;
    let t0 = now_us () -. st.t0_us in
    let finish () =
      let t1 = now_us () -. st.t0_us in
      st.cur_depth <- st.cur_depth - 1;
      record_event st
        {
          ev_name = name;
          ev_cat = cat;
          ev_ts_us = t0;
          ev_dur_us = t1 -. t0;
          ev_depth = d;
          ev_args = args;
        }
    in
    (match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e)

let instant ?(cat = "nullelim") ?(args = []) name =
  let st = state () in
  if st.active <> None then
    record_event st
      {
        ev_name = name;
        ev_cat = cat;
        ev_ts_us = now_us () -. st.t0_us;
        ev_dur_us = 0.;
        ev_depth = st.cur_depth;
        ev_args = args;
      }

(** Events in start order (spans record at exit, so the raw list is in
    completion order; sort by start time, ties broken longest-first so a
    parent precedes its children). *)
let ordered (s : sink) =
  List.stable_sort
    (fun a b ->
      match compare a.ev_ts_us b.ev_ts_us with
      | 0 -> compare b.ev_dur_us a.ev_dur_us
      | c -> c)
    (List.rev s.events)

let event_json (e : event) : Obs_json.t =
  Obs_json.Obj
    ([
       ("name", Obs_json.Str e.ev_name);
       ("cat", Obs_json.Str e.ev_cat);
       ("ph", Obs_json.Str "X");
       ("ts", Obs_json.Float e.ev_ts_us);
       ("dur", Obs_json.Float e.ev_dur_us);
       ("pid", Obs_json.Int 1);
       ("tid", Obs_json.Int 1);
     ]
    @ match e.ev_args with [] -> [] | args -> [ ("args", Obs_json.Obj args) ])

let to_json (events : event list) : Obs_json.t =
  Obs_json.Obj
    [
      ("traceEvents", Obs_json.List (List.map event_json events));
      ("displayTimeUnit", Obs_json.Str "ms");
    ]

let write path events =
  let oc = open_out path in
  output_string oc (Obs_json.to_string (to_json events));
  output_char oc '\n';
  close_out oc

let stop () =
  let st = state () in
  match st.active with
  | None -> []
  | Some s ->
    st.active <- None;
    st.cur_depth <- 0;
    let evs = ordered s in
    (match s.file with Some path -> write path evs | None -> ());
    evs

(* Arm from the environment, and flush at exit if the program never
   called [stop] itself.  Module initialization runs on the initial
   domain, so NULLELIM_TRACE arms exactly that domain's collection. *)
let () =
  match Sys.getenv_opt "NULLELIM_TRACE" with
  | Some path when path <> "" ->
    start_to_file path;
    at_exit (fun () -> ignore (stop ()))
  | Some _ | None -> ()
