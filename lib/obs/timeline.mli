(** Per-request causal timelines, reconstructed from a flight-recorder
    dump: the tentpole's payoff.  Every {!Recorder} event carries a
    causal context, so grouping a dump by request id recovers each
    request's enqueue → dequeue/start → done (or shed) span sequence
    with the queue wait and service time attributed to its tenant.
    [nullelim timelines] in the CLI and the [/flight]-driven CI artifact
    are thin wrappers over this module.  See DESIGN.md §15. *)

type phase = Completed | Shed | Inflight

val phase_name : phase -> string

type t = {
  tl_request : int;
  tl_tenant : int;  (** -1 when no event carried a tenant *)
  tl_events : Recorder.event list;  (** ts-sorted slice of the dump *)
  tl_enqueue : float option;  (** first [Req_enqueue] timestamp *)
  tl_dequeue : float option;  (** first [Req_start] timestamp *)
  tl_done : float option;     (** first [Req_done] timestamp *)
  tl_shed : float option;     (** first [Req_shed] timestamp *)
}

val of_events : Recorder.event list -> t list
(** Group a dump into timelines, one per distinct request id, sorted by
    request id.  An event joins a timeline via its context's request id
    or — for the [Req_*] lifecycle kinds — its [a] payload.
    Unattributed events (no request in scope) belong to no timeline. *)

val phase : t -> phase
(** [Completed] if a done span exists, else [Shed] if a shed span
    exists, else [Inflight]. *)

val queue_wait : t -> float option
(** Dequeue − enqueue, when both spans are present. *)

val service_time : t -> float option
(** Done − dequeue, when both spans are present. *)

val total_latency : t -> float option
(** Done − enqueue, when both spans are present. *)

val check_complete : ?dropped:int -> t list -> (unit, string) result
(** The structural gate the CI smoke runs on a live dump: every
    {e completed} timeline must carry enqueue, start and done spans in
    causal order, with every attributed span agreeing on the tenant and
    request id.  When [dropped > 0] the ring wrapped — the oldest spans
    were overwritten by design, so the check vacuously passes (the
    flight dump's ["warning"] member reports the loss instead). *)

val schema : string
(** ["nullelim-timeline/1"]. *)

val to_json : ?dropped:int -> t list -> Obs_json.t
(** [{"schema":"nullelim-timeline/1","schema_version":1,"dropped":D,
      "requests":N,"completed":C,"shed":S,"inflight":I,
      "timelines":[{"request","tenant","phase",optional
      "enqueue_ts"/"dequeue_ts"/"done_ts"/"shed_ts"/"queue_wait"/
      "service_time"/"total_latency","spans":[{"ts","domain","kind",
      "span","parent"}…]}…]}]. *)

val validate : Obs_json.t -> (unit, string) result
(** Structural validation of a {!to_json} document, including the
    [completed + shed + inflight = requests] tie-out. *)
