(** Per-domain sharding directory.

    A sharded structure (the metrics registry, the flight recorder) owns
    one shard per (owner, domain) pair: the owning domain mutates its
    shard with plain unsynchronized writes, and a merge step folds every
    shard that was ever created.  This functor provides the directory
    plumbing: lazy shard creation on first access from a domain, a
    per-domain lookup cache, and the owner-side list of all shards.

    One [Domain.DLS] key is allocated per functor application (not per
    owner), so creating many short-lived owners — e.g. the per-compile
    metrics registry — does not grow domain-local storage.  Each domain
    instead keeps a small bounded cache mapping owner uid to its shard;
    evicting a cache entry is harmless (re-access creates a fresh shard
    for the same owner, and merges sum over all of them). *)

module Make (S : sig
  type shard

  val create : owner_uid:int -> domain:int -> shard
  (** Called at most once per (owner, domain, cache-generation) on the
      accessing domain. *)
end) : sig
  type owner

  val create : unit -> owner

  val uid : owner -> int
  (** Process-unique id of this owner. *)

  val my_shard : owner -> S.shard
  (** The calling domain's shard of [owner], created and registered on
      first access.  Only the calling domain may mutate the result. *)

  val shards : owner -> S.shard list
  (** Every shard ever created for [owner], newest first.  Safe to call
      from any domain; entries belonging to live domains may still be
      mutated concurrently, so readers must tolerate (word-atomic)
      racy cell reads. *)
end
