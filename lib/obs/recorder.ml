(* See recorder.mli.  Struct-of-arrays rings: one float array for
   timestamps and a handful of int arrays for payload keep recording
   allocation-free (no per-event record on the hot path).  The four
   context columns (tenant/request/span/parent) are filled from the
   explicit [?ctx] or the calling domain's ambient {!Ctx.current}. *)

type kind =
  | Tier_promote
  | Tier_demote
  | Trap_fired
  | Cache_hit
  | Cache_miss
  | Cache_evict
  | Enqueue
  | Dequeue
  | Req_enqueue
  | Req_start
  | Req_done
  | Req_shed
  | Mark

let kind_to_int = function
  | Tier_promote -> 0
  | Tier_demote -> 1
  | Trap_fired -> 2
  | Cache_hit -> 3
  | Cache_miss -> 4
  | Cache_evict -> 5
  | Enqueue -> 6
  | Dequeue -> 7
  | Req_enqueue -> 8
  | Req_start -> 9
  | Req_done -> 10
  | Req_shed -> 11
  | Mark -> 12

let kind_of_int = function
  | 0 -> Tier_promote
  | 1 -> Tier_demote
  | 2 -> Trap_fired
  | 3 -> Cache_hit
  | 4 -> Cache_miss
  | 5 -> Cache_evict
  | 6 -> Enqueue
  | 7 -> Dequeue
  | 8 -> Req_enqueue
  | 9 -> Req_start
  | 10 -> Req_done
  | 11 -> Req_shed
  | _ -> Mark

let kind_name = function
  | Tier_promote -> "tier_promote"
  | Tier_demote -> "tier_demote"
  | Trap_fired -> "trap_fired"
  | Cache_hit -> "cache_hit"
  | Cache_miss -> "cache_miss"
  | Cache_evict -> "cache_evict"
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Req_enqueue -> "req_enqueue"
  | Req_start -> "req_start"
  | Req_done -> "req_done"
  | Req_shed -> "req_shed"
  | Mark -> "mark"

let kind_of_name = function
  | "tier_promote" -> Some Tier_promote
  | "tier_demote" -> Some Tier_demote
  | "trap_fired" -> Some Trap_fired
  | "cache_hit" -> Some Cache_hit
  | "cache_miss" -> Some Cache_miss
  | "cache_evict" -> Some Cache_evict
  | "enqueue" -> Some Enqueue
  | "dequeue" -> Some Dequeue
  | "req_enqueue" -> Some Req_enqueue
  | "req_start" -> Some Req_start
  | "req_done" -> Some Req_done
  | "req_shed" -> Some Req_shed
  | "mark" -> Some Mark
  | _ -> None

type event = {
  ev_ts : float;
  ev_domain : int;
  ev_kind : kind;
  ev_a : int;
  ev_b : int;
  ev_ctx : Ctx.t;
}

type ring = {
  rd : int;               (* recording domain's id *)
  cap : int;
  rts : float array;
  rkind : int array;
  ra : int array;
  rb : int array;
  rtenant : int array;
  rreq : int array;
  rspan : int array;
  rparent : int array;
  mutable w : int;        (* total events ever recorded *)
}

(* Domain_shard's create hook only sees the owner uid, so per-owner
   capacity is resolved through this side table (written once per
   recorder, under the mutex). *)
let caps : (int, int) Hashtbl.t = Hashtbl.create 8
let caps_m = Mutex.create ()

let default_capacity = 4096

module Rings = Domain_shard.Make (struct
  type shard = ring

  let create ~owner_uid ~domain =
    let cap =
      Mutex.lock caps_m;
      let c =
        Option.value ~default:default_capacity
          (Hashtbl.find_opt caps owner_uid)
      in
      Mutex.unlock caps_m;
      c
    in
    {
      rd = domain;
      cap;
      rts = Array.make cap 0.;
      rkind = Array.make cap 0;
      ra = Array.make cap 0;
      rb = Array.make cap 0;
      rtenant = Array.make cap (-1);
      rreq = Array.make cap (-1);
      rspan = Array.make cap (-1);
      rparent = Array.make cap (-1);
      w = 0;
    }
end)

type t = {
  owner : Rings.owner;
  enabled : bool Atomic.t;
  rcap : int;
}

let schema = "nullelim-flight/1"
let schema_version = 1

let create ?(capacity = default_capacity) () : t =
  if capacity < 1 then invalid_arg "Recorder.create: capacity must be >= 1";
  let owner = Rings.create () in
  Mutex.lock caps_m;
  Hashtbl.replace caps (Rings.uid owner) capacity;
  Mutex.unlock caps_m;
  { owner; enabled = Atomic.make true; rcap = capacity }

let global : t = create ~capacity:8192 ()

let record ?ctx ?(a = 0) ?(b = 0) (t : t) (kind : kind) : unit =
  if Atomic.get t.enabled then begin
    let c = match ctx with Some c -> c | None -> Ctx.current () in
    let r = Rings.my_shard t.owner in
    let i = r.w mod r.cap in
    r.rts.(i) <- Unix.gettimeofday ();
    r.rkind.(i) <- kind_to_int kind;
    r.ra.(i) <- a;
    r.rb.(i) <- b;
    r.rtenant.(i) <- c.Ctx.cx_tenant;
    r.rreq.(i) <- c.Ctx.cx_request;
    r.rspan.(i) <- c.Ctx.cx_span;
    r.rparent.(i) <- c.Ctx.cx_parent;
    r.w <- r.w + 1
  end

let set_enabled t on = Atomic.set t.enabled on
let is_enabled t = Atomic.get t.enabled
let capacity t = t.rcap

let ring_events (r : ring) : event list =
  let w = r.w in
  let n = min w r.cap in
  (* oldest retained event first *)
  List.init n (fun k ->
      let i = (w - n + k) mod r.cap in
      {
        ev_ts = r.rts.(i);
        ev_domain = r.rd;
        ev_kind = kind_of_int r.rkind.(i);
        ev_a = r.ra.(i);
        ev_b = r.rb.(i);
        ev_ctx =
          {
            Ctx.cx_tenant = r.rtenant.(i);
            cx_request = r.rreq.(i);
            cx_span = r.rspan.(i);
            cx_parent = r.rparent.(i);
          };
      })

let dump (t : t) : event list =
  Rings.shards t.owner
  |> List.concat_map ring_events
  |> List.stable_sort (fun a b -> compare a.ev_ts b.ev_ts)

let dropped (t : t) : int =
  List.fold_left
    (fun acc r -> acc + max 0 (r.w - r.cap))
    0 (Rings.shards t.owner)

let clear (t : t) : unit =
  List.iter (fun r -> r.w <- 0) (Rings.shards t.owner)

let record_metrics ?(registry = Metrics.global) (t : t) : unit =
  Metrics.set (Metrics.gauge registry "flight_recorder_dropped")
    (float_of_int (dropped t));
  Metrics.set (Metrics.gauge registry "flight_recorder_capacity")
    (float_of_int t.rcap)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let event_to_json (e : event) : Obs_json.t =
  Obs_json.Obj
    [
      ("ts", Obs_json.Float e.ev_ts);
      ("domain", Obs_json.Int e.ev_domain);
      ("kind", Obs_json.Str (kind_name e.ev_kind));
      ("a", Obs_json.Int e.ev_a);
      ("b", Obs_json.Int e.ev_b);
      ("tenant", Obs_json.Int e.ev_ctx.Ctx.cx_tenant);
      ("request", Obs_json.Int e.ev_ctx.Ctx.cx_request);
      ("span", Obs_json.Int e.ev_ctx.Ctx.cx_span);
      ("parent", Obs_json.Int e.ev_ctx.Ctx.cx_parent);
    ]

let to_json (t : t) : Obs_json.t =
  let d = dropped t in
  Obs_json.Obj
    ([
       ("schema", Obs_json.Str schema);
       ("schema_version", Obs_json.Int schema_version);
       ("capacity", Obs_json.Int t.rcap);
       ("dropped", Obs_json.Int d);
     ]
    @ (if d > 0 then
         [
           ( "warning",
             Obs_json.Str
               (Printf.sprintf
                  "%d events were overwritten before this dump; the oldest \
                   part of the timeline is incomplete (raise the recorder \
                   capacity to retain more)"
                  d) );
         ]
       else [])
    @ [ ("events", Obs_json.List (List.map event_to_json (dump t))) ])

let validate (j : Obs_json.t) : (unit, string) result =
  let ( let* ) r f = Result.bind r f in
  let* () =
    match Obs_json.member "schema" j with
    | Some (Obs_json.Str s) when s = schema -> Ok ()
    | Some (Obs_json.Str s) ->
      Error (Printf.sprintf "unsupported schema %s (want %s)" s schema)
    | _ -> Error "missing schema"
  in
  let* () =
    match (Obs_json.member "capacity" j, Obs_json.member "dropped" j) with
    | Some (Obs_json.Int c), Some (Obs_json.Int d) when c >= 1 && d >= 0 ->
      Ok ()
    | _ -> Error "capacity/dropped must be non-negative integers"
  in
  let* () =
    (* the drop warning, when present, must accompany a positive count *)
    match (Obs_json.member "warning" j, Obs_json.member "dropped" j) with
    | None, _ -> Ok ()
    | Some (Obs_json.Str _), Some (Obs_json.Int d) when d > 0 -> Ok ()
    | Some (Obs_json.Str _), _ -> Error "warning present but dropped = 0"
    | Some _, _ -> Error "warning must be a string"
  in
  match Obs_json.member "events" j with
  | Some (Obs_json.List evs) ->
    let opt_int name e =
      match Obs_json.member name e with
      | None | Some (Obs_json.Int _) -> true
      | Some _ -> false
    in
    let check_event prev_ts e =
      let* prev_ts = prev_ts in
      match
        ( Obs_json.member "ts" e,
          Obs_json.member "domain" e,
          Obs_json.member "kind" e,
          Obs_json.member "a" e,
          Obs_json.member "b" e )
      with
      | Some ((Obs_json.Float _ | Obs_json.Int _) as jts),
        Some (Obs_json.Int _),
        Some (Obs_json.Str k),
        Some (Obs_json.Int _),
        Some (Obs_json.Int _) ->
        let ts =
          match jts with
          | Obs_json.Int i -> float_of_int i
          | Obs_json.Float f -> f
          | _ -> 0.
        in
        let* () =
          match kind_of_name k with
          | Some _ -> Ok ()
          | None -> Error (Printf.sprintf "unknown event kind %s" k)
        in
        let* () =
          if
            List.for_all
              (fun n -> opt_int n e)
              [ "tenant"; "request"; "span"; "parent" ]
          then Ok ()
          else Error "context fields must be integers"
        in
        if ts +. 1e-9 < prev_ts then
          Error "events not sorted by timestamp"
        else Ok ts
      | _ -> Error "event missing ts/domain/kind/a/b"
    in
    let* _ = List.fold_left check_event (Ok neg_infinity) evs in
    Ok ()
  | _ -> Error "missing events list"

let to_trace (t : t) : Trace.event list =
  match dump t with
  | [] -> []
  | first :: _ as evs ->
    let t0 = first.ev_ts in
    List.map
      (fun e ->
        {
          Trace.ev_name = kind_name e.ev_kind;
          ev_cat = "flight";
          ev_ts_us = (e.ev_ts -. t0) *. 1e6;
          ev_dur_us = 0.;
          ev_depth = 0;
          ev_args =
            ([
               ("domain", Obs_json.Int e.ev_domain);
               ("a", Obs_json.Int e.ev_a);
               ("b", Obs_json.Int e.ev_b);
             ]
            @
            if Ctx.is_none e.ev_ctx then []
            else
              [
                ("tenant", Obs_json.Int e.ev_ctx.Ctx.cx_tenant);
                ("request", Obs_json.Int e.ev_ctx.Ctx.cx_request);
              ]);
        })
      evs
