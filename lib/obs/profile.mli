(** Per-site dynamic execution profile.

    A collector accumulates, during one interpreter run, the dynamic
    counts the paper's evaluation is built on (Figures 7-8): per-block
    execution counts, per-check-site hit counts — split into explicit
    executions, implicit "free" crossings and bound checks — and the
    runtime events a check site can produce (an explicit check catching
    a null, a hardware trap firing at an implicit site, a silent
    implicit miss, a speculative null read).

    The collector is deliberately untyped with respect to the IR: sites
    are integers ([Ir.site] values), functions are names and blocks are
    labels, so the module lives in the dependency-free telemetry layer
    and both the VM and the report generator can use it. *)

type t

type check_kind = Cexplicit | Cimplicit | Cbound

type site_row = {
  sr_site : int;     (** provenance id; -1 groups checks with no site *)
  sr_func : string;
  sr_kind : check_kind;
  sr_tier : int;     (** tier of the code version executing the check;
                         0 for untiered runs *)
  sr_hits : int;     (** dynamic executions of the check *)
  sr_npe : int;      (** nulls caught by this (explicit) check *)
  sr_traps : int;    (** hardware traps fired at this (implicit) site *)
  sr_misses : int;   (** silent implicit misses at this site *)
}

type block_row = {
  br_func : string;
  br_block : int;
  br_count : int;      (** times the block was executed *)
  br_spec_reads : int; (** speculative null reads raised in the block *)
}

val create : unit -> t

(** {1 Recording — called by the interpreter} *)

val hit_block : t -> func:string -> block:int -> unit

val hit_check :
  ?tier:int -> t -> func:string -> site:int -> kind:check_kind -> unit

val record_npe : ?tier:int -> t -> func:string -> site:int -> unit
val record_trap : ?tier:int -> t -> func:string -> site:int -> unit
val record_miss : ?tier:int -> t -> func:string -> site:int -> unit
(** Site events are accumulated per [(site, kind, tier)]; [tier]
    defaults to 0, so untiered callers see the pre-tier behavior.  The
    tiered manager passes the tier of the executing code version, which
    splits a site's counts across the versions that executed it. *)

val record_spec_read : t -> func:string -> block:int -> unit

val record_other_trap : t -> unit
(** A hardware trap not attributable to any check site (e.g. a virtual
    dispatch through null whose method-table load faults). *)

(** {1 Reading} *)

val sites : t -> site_row list
(** Sorted by (func, site, kind, tier). *)

val blocks : t -> block_row list
(** Sorted by (func, block). *)

val other_traps : t -> int

val total_hits : t -> check_kind -> int
(** Sum of [sr_hits] over all sites of one kind. *)

(** {1 Snapshot schema} *)

val schema : string
(** ["nullelim-profile/2"] — /2 added the per-site [tier] dimension. *)

val schema_version : int

val to_json : t -> Obs_json.t
(** [{"schema": "nullelim-profile/2", "schema_version": 2,
      "sites": [...], "blocks": [...], "other_traps": n}] with rows in
    the {!sites}/{!blocks} order — deterministic for a deterministic
    run. *)

val validate : Obs_json.t -> (unit, string) result
(** Structural validation of a snapshot (or of a document embedding one
    under a ["profile"] key is the caller's concern). *)

val kind_to_string : check_kind -> string
