(** Leveled logging ([NULLELIM_LOG=debug|info|warn|quiet], default
    [warn]); the only sanctioned path to stderr for library code. *)

type level = Debug | Info | Warn | Quiet

val to_string : level -> string
(** Lower-case level name ("debug", "info", …). *)

val of_string : string -> level option
(** Inverse of {!to_string}; [None] on anything else. *)

val set_level : level -> unit
(** Override the threshold for the rest of the process; wins over the
    [NULLELIM_LOG] environment variable read at startup. *)

val level : unit -> level
(** The current threshold. *)

val enabled : level -> bool
(** Would a message at this level be emitted right now? *)

val debug : ('a, Format.formatter, unit, unit) format4 -> 'a
(** [Fmt]-style formatted message, printed to stderr as
    ["[nullelim:debug] ..."] when the threshold admits it; likewise
    {!info} and {!warn}.  All three are cheap no-ops when gated off. *)

val info : ('a, Format.formatter, unit, unit) format4 -> 'a
val warn : ('a, Format.formatter, unit, unit) format4 -> 'a
