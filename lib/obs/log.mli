(** Leveled logging ([NULLELIM_LOG=debug|info|warn|quiet], default
    [warn]); the only sanctioned path to stderr for library code. *)

type level = Debug | Info | Warn | Quiet

val to_string : level -> string
val of_string : string -> level option
val set_level : level -> unit
val level : unit -> level

val enabled : level -> bool
(** Would a message at this level be emitted right now? *)

val debug : ('a, Format.formatter, unit, unit) format4 -> 'a
val info : ('a, Format.formatter, unit, unit) format4 -> 'a
val warn : ('a, Format.formatter, unit, unit) format4 -> 'a
