(* See ctx.mli.  The ambient slot is one Domain.DLS ref per domain; a
   context is four immediate ints, so reading or restoring it never
   allocates. *)

type t = {
  cx_tenant : int;
  cx_request : int;
  cx_span : int;
  cx_parent : int;
}

let none = { cx_tenant = -1; cx_request = -1; cx_span = -1; cx_parent = -1 }

let is_none c = c.cx_span < 0 && c.cx_request < 0 && c.cx_tenant < 0

(* Span ids are process-unique; 0 is never minted so a zeroed ring slot
   cannot masquerade as a real span. *)
let next_span = Atomic.make 1

let mint ?(tenant = -1) ?(request = -1) () =
  {
    cx_tenant = tenant;
    cx_request = request;
    cx_span = Atomic.fetch_and_add next_span 1;
    cx_parent = -1;
  }

let child c =
  {
    c with
    cx_span = Atomic.fetch_and_add next_span 1;
    cx_parent = c.cx_span;
  }

let key : t ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref none)

let current () = !(Domain.DLS.get key)

let set_current c = Domain.DLS.get key := c

let with_current c f =
  let slot = Domain.DLS.get key in
  let saved = !slot in
  slot := c;
  Fun.protect ~finally:(fun () -> slot := saved) f

let tenant_label t = if t < 0 then "none" else string_of_int t

let to_json (c : t) : Obs_json.t =
  Obs_json.Obj
    [
      ("tenant", Obs_json.Int c.cx_tenant);
      ("request", Obs_json.Int c.cx_request);
      ("span", Obs_json.Int c.cx_span);
      ("parent", Obs_json.Int c.cx_parent);
    ]
