(** Leveled logging for library code.

    Library modules must never write to stderr unconditionally; they call
    {!debug}/{!info}/{!warn} and the active level decides whether
    anything is printed.  The initial level comes from the environment
    variable [NULLELIM_LOG] ([debug], [info], [warn] or [quiet]); the
    default is [warn], so a library embedded in a larger program is
    silent unless something is actually wrong. *)

type level = Debug | Info | Warn | Quiet

let to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Quiet -> "quiet"

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "quiet" | "none" | "off" -> Some Quiet
  | _ -> None

let rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Quiet -> 3

let current =
  ref
    (match Sys.getenv_opt "NULLELIM_LOG" with
    | Some s -> Option.value ~default:Warn (of_string s)
    | None -> Warn)

let set_level l = current := l
let level () = !current

(** Is a message at [l] emitted under the active level? *)
let enabled l = l <> Quiet && rank l >= rank !current

let logf l fmt =
  if enabled l then
    Format.eprintf ("[nullelim:%s] " ^^ fmt ^^ "@.") (to_string l)
  else Format.ifprintf Format.err_formatter fmt

let debug fmt = logf Debug fmt
let info fmt = logf Info fmt
let warn fmt = logf Warn fmt
