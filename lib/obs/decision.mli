(** Per-check optimization decision log: every null/bound-check
    transformation records what was done, why, and the delta it applies
    to the static explicit/implicit check counts — so the compiler's
    final check statistics are derivable (and verified) from the log. *)

type action =
  | Eliminated_redundant
  | Moved_backward
  | Moved_forward
  | Converted_implicit
  | Substituted
  | Speculated
  | Duplicated
  | Dropped_unreachable
  | Deoptimized

type justification =
  | Nonnull_dominating
  | Insertion_earliest
  | Floated
  | Trap_covered of int option
  | Trap_not_covered
  | Side_effect_barrier
  | Overwritten
  | Not_anticipated
  | Covered_later
  | Available_on_entry
  | Invariant_in_loop
  | Speculative_read
  | Inline_copy of string
  | Unreachable_code
  | Trap_fired

type kind = Kexplicit | Kimplicit | Kbound | Kother

type event = {
  id : int;
  pass : string;
  func : string;
  block : int;
  var : int;
  kind : kind;
  action : action;
  just : justification;
  d_explicit : int;
  d_implicit : int;
  site : int;    (** provenance id of the check acted on; -1 when unknown *)
  parent : int;  (** originating site for fresh materializations; -1 otherwise *)
  tier : int;    (** execution tier of the recording compilation; -1 untiered *)
}

val active : unit -> bool
(** Is a collector installed?  Passes may use this to skip building
    event payloads entirely. *)

val set_pass : string -> unit
val set_func : string -> unit
(** Context maintained by the pass manager; no-ops when inactive. *)

val set_tier : int -> unit
(** Tier context set once per compilation by the JIT driver (before any
    pass runs); events record it in their [tier] field.  No-op when
    inactive; a fresh collector starts at -1 (untiered). *)

val record :
  ?d_explicit:int ->
  ?d_implicit:int ->
  ?block:int ->
  ?var:int ->
  ?site:int ->
  ?parent:int ->
  kind:kind ->
  action:action ->
  just:justification ->
  unit ->
  unit
(** Append one event to the installed collector (no-op when inactive). *)

val with_log : (unit -> 'a) -> 'a * event list
(** Run with a fresh collector; returns events in record order.
    Re-entrant: saves and restores any outer collector. *)

val derived_deltas : event list -> int * int
(** [(sum d_explicit, sum d_implicit)]. *)

val action_to_string : action -> string
(** Kebab-case action name as it appears in reports
    ("eliminated-redundant", "moved-backward", …). *)

val justification_to_string : justification -> string
(** Kebab-case justification, with the trap offset appended for
    [Trap_covered] and the callee for [Inline_copy]. *)

val kind_to_string : kind -> string

val event_to_json : event -> Obs_json.t
(** One event as a flat JSON object (string action/justification/kind,
    int everything else). *)

val to_json : event list -> Obs_json.t
(** The events as a JSON array, in the given order. *)

val summary : event list -> (string * int) list
(** Event counts per action name, sorted. *)
