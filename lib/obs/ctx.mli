(** Causal trace context: who caused the event the runtime is about to
    record.

    A context is minted at the service front door — one per compile
    request — and names the {e tenant} that submitted the request, the
    service-wide {e request id}, and a process-unique {e span id} with
    its parent (so nested work can hang off the request).  It is carried
    two ways:

    - {e explicitly}, on the structures that cross domains (a queued
      task carries its context; the worker that picks it up records
      request lifecycle events against it);
    - {e ambiently}, in a per-domain slot ({!current} /
      {!with_current}): layers that are too deep to thread a context
      through — the code cache recording a hit, the tier manager logging
      a promotion — inherit whatever request their domain is currently
      serving, because {!Recorder.record} reads the ambient slot by
      default.

    A context is four immediate ints; reading, setting and restoring the
    ambient slot never allocates, which is what keeps the recorder hot
    path inside the <5% macro overhead budget (DESIGN.md §15). *)

type t = {
  cx_tenant : int;   (** tenant id, [-1] = unattributed *)
  cx_request : int;  (** service-wide request id, [-1] = none *)
  cx_span : int;     (** process-unique span id, [-1] = none *)
  cx_parent : int;   (** parent span id, [-1] = root *)
}

val none : t
(** The null context (all fields [-1]); what {!current} returns outside
    any request. *)

val is_none : t -> bool

val mint : ?tenant:int -> ?request:int -> unit -> t
(** A fresh root span ([cx_parent = -1]) with a process-unique span id.
    Span ids start at 1, so id 0 never occurs. *)

val child : t -> t
(** Same tenant and request, fresh span id, parent = the argument's
    span. *)

val current : unit -> t
(** The calling domain's ambient context ({!none} if unset). *)

val set_current : t -> unit
(** Overwrite the ambient slot.  Prefer {!with_current}, which
    restores. *)

val with_current : t -> (unit -> 'a) -> 'a
(** Run with the ambient context set to [t], restoring the previous
    value on any exit path. *)

val tenant_label : int -> string
(** Canonical metrics label value for a tenant id: the decimal id, or
    ["none"] for negative (unattributed) ids. *)

val to_json : t -> Obs_json.t
