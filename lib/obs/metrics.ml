(** Typed metrics registry: counters, gauges and histograms with labels,
    and one stable JSON snapshot schema (see {!schema_version}).

    This is the single sink that unifies the instrumentation that used to
    live in three ad-hoc shapes (the pass manager's timing/counter
    hashtables, the data-flow solver's mutable counter record, the
    interpreter's counter record): the pass manager and the JIT driver
    write per-pass and per-compile series into a registry, the
    interpreter can dump its dynamic counters into one, and the benchmark
    harness merges {!snapshot} into its JSON report.

    An instrument is identified by its name plus its label set; asking
    for the same (name, labels) twice returns the same instrument, and
    asking with a different type is a programming error
    ([Invalid_argument]).

    Domain safety (see DESIGN.md §14): the registry is sharded
    per domain.  Counters and histograms live in domain-local shards
    ({!Domain_shard}) so the hot mutation path is a plain unsynchronized
    write — no lock, no CAS — and {!snapshot} / the [_total] readers
    merge all shards by summation.  Gauges have set-semantics (a sum of
    per-domain values is meaningless), so each gauge is a single shared
    [Atomic.t] cell.  Cross-domain reads of live cells are racy word
    reads — never torn, but possibly missing in-flight bumps; after the
    writing domains quiesce (join, pool shutdown) merged values are
    exact. *)

type labels = (string * string) list

(* Central per-registry spec of every instrument ever registered:
   enforces kind consistency across domains and fixes a histogram's
   bucket bounds at first registration. *)
type kind =
  | Kcounter
  | Kgauge
  | Khistogram of float array  (* upper bounds, ascending; +inf implicit *)

(* Domain-local cells.  Mutated only by the owning domain. *)
type hcells = {
  hbuckets : float array;       (* shared spec array, never written *)
  hcounts : int array;          (* length = Array.length hbuckets + 1 *)
  mutable hcount : int;
  mutable hsum : float;
}

type cell = Ccounter of int ref | Chistogram of hcells

type shard = {
  sh_tbl : (string * labels, cell) Hashtbl.t;
  sh_m : Mutex.t;
      (* Guards structural mutation of [sh_tbl] against cross-domain
         snapshot traversal.  The owning domain's lookups need no lock:
         only the owner inserts, and traversals don't mutate. *)
}

module Shards = Domain_shard.Make (struct
  type nonrec shard = shard

  let create ~owner_uid:_ ~domain:_ =
    { sh_tbl = Hashtbl.create 32; sh_m = Mutex.create () }
end)

type t = {
  owner : Shards.owner;
  rm : Mutex.t;                 (* guards [specs] and [gauges] *)
  specs : (string * labels, kind) Hashtbl.t;
  gauges : (string * labels, float Atomic.t) Hashtbl.t;
}

type counter = int ref          (* the calling domain's cell *)
type gauge = float Atomic.t     (* shared across domains *)
type histogram = hcells         (* the calling domain's cells *)

let schema_version = 1

let create () : t =
  {
    owner = Shards.create ();
    rm = Mutex.create ();
    specs = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
  }

(** A process-wide default registry, for callers that do not thread their
    own. *)
let global : t = create ()

let norm_labels (labels : labels) : labels =
  List.sort_uniq compare labels

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let kind_error name want =
  invalid_arg
    (Printf.sprintf "Metrics: %s already registered with a different type (wanted %s)"
       name want)

(* Register (or fetch) the canonical spec for a key; the first
   registration wins, later ones must agree on the constructor. *)
let register_spec (r : t) key (k : kind) : kind =
  with_lock r.rm (fun () ->
      match Hashtbl.find_opt r.specs key with
      | Some k0 -> k0
      | None ->
        Hashtbl.replace r.specs key k;
        k)

(* The calling domain's cell for [key], creating it from [spec] on first
   access.  Insertion excludes concurrent snapshot traversal. *)
let my_cell (r : t) key (mk : unit -> cell) : cell =
  let sh = Shards.my_shard r.owner in
  match Hashtbl.find_opt sh.sh_tbl key with
  | Some c -> c
  | None ->
    let c = mk () in
    with_lock sh.sh_m (fun () -> Hashtbl.replace sh.sh_tbl key c);
    c

let counter (r : t) ?(labels = []) name : counter =
  let key = (name, norm_labels labels) in
  match register_spec r key Kcounter with
  | Kgauge | Khistogram _ -> kind_error name "counter"
  | Kcounter -> (
    match my_cell r key (fun () -> Ccounter (ref 0)) with
    | Ccounter c -> c
    | Chistogram _ -> assert false (* spec said counter *))

let inc (c : counter) n = c := !c + n
let counter_value (c : counter) = !c

let gauge (r : t) ?(labels = []) name : gauge =
  let key = (name, norm_labels labels) in
  with_lock r.rm (fun () ->
      match Hashtbl.find_opt r.specs key with
      | Some (Kcounter | Khistogram _) -> kind_error name "gauge"
      | Some Kgauge -> Hashtbl.find r.gauges key
      | None ->
        Hashtbl.replace r.specs key Kgauge;
        let g = Atomic.make 0. in
        Hashtbl.replace r.gauges key g;
        g)

let set (g : gauge) v = Atomic.set g v

let rec add (g : gauge) v =
  let cur = Atomic.get g in
  if not (Atomic.compare_and_set g cur (cur +. v)) then add g v

let gauge_value (g : gauge) = Atomic.get g

(** Default histogram buckets: wall-clock seconds from 1 microsecond up
    to ~10 s, factor-of-~3 spacing. *)
let default_buckets =
  [| 1e-6; 3e-6; 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3;
     1.; 3.; 10. |]

let log_buckets ~lo ~hi ~per_decade : float array =
  if not (lo > 0. && hi > lo && per_decade >= 1) then
    invalid_arg "Metrics.log_buckets: need 0 < lo < hi and per_decade >= 1";
  let n =
    int_of_float (ceil (float per_decade *. log10 (hi /. lo) -. 1e-9))
  in
  Array.init (n + 1) (fun i ->
      lo *. (10. ** (float i /. float per_decade)))

let histogram (r : t) ?(labels = []) ?(buckets = default_buckets) name :
    histogram =
  let key = (name, norm_labels labels) in
  let sorted () =
    let b = Array.copy buckets in
    Array.sort compare b;
    b
  in
  match register_spec r key (Khistogram (sorted ())) with
  | Kcounter | Kgauge -> kind_error name "histogram"
  | Khistogram canonical -> (
    let mk () =
      Chistogram
        { hbuckets = canonical;
          hcounts = Array.make (Array.length canonical + 1) 0;
          hcount = 0; hsum = 0. }
    in
    match my_cell r key mk with
    | Chistogram h -> h
    | Ccounter _ -> assert false)

let observe (h : histogram) v =
  let nb = Array.length h.hbuckets in
  let rec slot k = if k >= nb || v <= h.hbuckets.(k) then k else slot (k + 1) in
  let k = slot 0 in
  h.hcounts.(k) <- h.hcounts.(k) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. v

let histogram_count (h : histogram) = h.hcount
let histogram_sum (h : histogram) = h.hsum

(* ------------------------------------------------------------------ *)
(* Merged (cross-domain) reads                                         *)
(* ------------------------------------------------------------------ *)

(* Fold [f] over every shard's cell for [key].  Shard locks exclude
   concurrent structural insertion during the lookup; the cell reads
   themselves are unsynchronized word reads. *)
let fold_cells (r : t) key (f : 'a -> cell -> 'a) (init : 'a) : 'a =
  List.fold_left
    (fun acc sh ->
      match with_lock sh.sh_m (fun () -> Hashtbl.find_opt sh.sh_tbl key) with
      | Some c -> f acc c
      | None -> acc)
    init
    (Shards.shards r.owner)

let counter_total (r : t) ?(labels = []) name : int =
  let key = (name, norm_labels labels) in
  fold_cells r key
    (fun acc c -> match c with Ccounter c -> acc + !c | Chistogram _ -> acc)
    0

(* Merged histogram for [key]: (bucket bounds, per-bucket counts, total
   count, sum).  None if no histogram is registered under the key. *)
let merged_histogram (r : t) key : (float array * int array * int * float) option =
  match with_lock r.rm (fun () -> Hashtbl.find_opt r.specs key) with
  | Some (Khistogram buckets) ->
    let counts = Array.make (Array.length buckets + 1) 0 in
    let n = ref 0 and sum = ref 0. in
    fold_cells r key
      (fun () c ->
        match c with
        | Chistogram h ->
          Array.iteri (fun k v -> counts.(k) <- counts.(k) + v) h.hcounts;
          n := !n + h.hcount;
          sum := !sum +. h.hsum
        | Ccounter _ -> ())
      ();
    Some (buckets, counts, !n, !sum)
  | Some (Kcounter | Kgauge) | None -> None

let histogram_total_count (r : t) ?(labels = []) name : int =
  match merged_histogram r (name, norm_labels labels) with
  | Some (_, _, n, _) -> n
  | None -> 0

let histogram_merged (r : t) ?(labels = []) name :
    (float array * int array * int * float) option =
  merged_histogram r (name, norm_labels labels)

(* Every registered (labels) variant of [name], in registration-spec
   (sorted-key) order.  Lets callers enumerate e.g. the tenants a
   labelled family has accumulated. *)
let instruments (r : t) name : labels list =
  with_lock r.rm (fun () ->
      Hashtbl.fold
        (fun (n, labels) _ acc -> if n = name then labels :: acc else acc)
        r.specs [])
  |> List.sort compare

let label_values (r : t) name key : string list =
  instruments r name
  |> List.filter_map (fun labels -> List.assoc_opt key labels)
  |> List.sort_uniq compare

(* Sum of [name] across every label set and every domain. *)
let counter_total_any (r : t) name : int =
  instruments r name
  |> List.fold_left (fun acc labels -> acc + counter_total r ~labels name) 0

(* Merge [name]'s histograms across every label set whose bucket bounds
   agree with the first registration (the registry never registers the
   same name with different bounds in practice — bounds are fixed by the
   first caller — so the guard is belt-and-braces). *)
let histogram_merged_any (r : t) name :
    (float array * int array * int * float) option =
  let variants =
    instruments r name
    |> List.filter_map (fun labels -> histogram_merged r ~labels name)
  in
  match variants with
  | [] -> None
  | (b0, _, _, _) :: _ ->
    let counts = Array.make (Array.length b0 + 1) 0 in
    let n = ref 0 and sum = ref 0. in
    List.iter
      (fun (b, c, hn, hs) ->
        if b = b0 then begin
          Array.iteri (fun k v -> counts.(k) <- counts.(k) + v) c;
          n := !n + hn;
          sum := !sum +. hs
        end)
      variants;
    Some (b0, counts, !n, !sum)

(* ------------------------------------------------------------------ *)
(* Percentiles                                                         *)
(* ------------------------------------------------------------------ *)

(* Rank-based extraction from cumulative-by-construction bucket counts:
   the q-quantile is the upper bound of the first bucket whose running
   count reaches ceil(q * total) — i.e. an overestimate by at most one
   bucket width.  The overflow bucket reports +infinity (the registry
   does not track the max). *)
let percentile_of ~buckets ~counts ~total q : float =
  if total = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = max 1 (min total (int_of_float (ceil (q *. float total)))) in
    let nb = Array.length buckets in
    let rec go k cum =
      let cum = cum + counts.(k) in
      if cum >= target then (if k < nb then buckets.(k) else Float.infinity)
      else go (k + 1) cum
    in
    go 0 0
  end

let percentiles (r : t) ?(labels = []) name (qs : float list) : float list =
  match merged_histogram r (name, norm_labels labels) with
  | None -> List.map (fun _ -> Float.nan) qs
  | Some (buckets, counts, total, _) ->
    List.map (percentile_of ~buckets ~counts ~total) qs

let percentile (r : t) ?labels name q : float =
  match percentiles r ?labels name [ q ] with
  | [ v ] -> v
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

let labels_json (labels : labels) : Obs_json.t =
  Obs_json.Obj (List.map (fun (k, v) -> (k, Obs_json.Str v)) labels)

let snapshot (r : t) : Obs_json.t =
  (* deterministic order: sorted by (name, labels); values merged across
     every domain's shard *)
  let keys =
    with_lock r.rm (fun () ->
        Hashtbl.fold (fun key kind acc -> (key, kind) :: acc) r.specs []
        |> List.sort compare)
  in
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (((name, labels) as key), kind) ->
      let base = [ ("name", Obs_json.Str name); ("labels", labels_json labels) ] in
      match kind with
      | Kcounter ->
        let v = counter_total r ~labels name in
        counters :=
          Obs_json.Obj (base @ [ ("value", Obs_json.Int v) ]) :: !counters
      | Kgauge ->
        let g = with_lock r.rm (fun () -> Hashtbl.find r.gauges key) in
        gauges :=
          Obs_json.Obj (base @ [ ("value", Obs_json.Float (Atomic.get g)) ])
          :: !gauges
      | Khistogram _ ->
        let buckets, counts, hcount, hsum =
          Option.get (merged_histogram r key)
        in
        let bucket k le =
          Obs_json.Obj [ ("le", le); ("count", Obs_json.Int counts.(k)) ]
        in
        let bs =
          List.init (Array.length buckets) (fun k ->
              bucket k (Obs_json.Float buckets.(k)))
          @ [ bucket (Array.length buckets) (Obs_json.Str "+Inf") ]
        in
        histograms :=
          Obs_json.Obj
            (base
            @ [
                ("count", Obs_json.Int hcount);
                ("sum", Obs_json.Float hsum);
                ("buckets", Obs_json.List bs);
              ])
          :: !histograms)
    keys;
  Obs_json.Obj
    [
      ("schema_version", Obs_json.Int schema_version);
      ("counters", Obs_json.List (List.rev !counters));
      ("gauges", Obs_json.List (List.rev !gauges));
      ("histograms", Obs_json.List (List.rev !histograms));
    ]

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)
(* ------------------------------------------------------------------ *)

let validate (j : Obs_json.t) : (unit, string) result =
  let ( let* ) r f = Result.bind r f in
  let str_labels = function
    | Obs_json.Obj kvs ->
      if List.for_all (function _, Obs_json.Str _ -> true | _ -> false) kvs
      then Ok ()
      else Error "labels values must be strings"
    | _ -> Error "labels must be an object"
  in
  let check_series kind check_extra = function
    | Obs_json.Obj _ as o -> (
      match (Obs_json.member "name" o, Obs_json.member "labels" o) with
      | Some (Obs_json.Str _), Some labels ->
        let* () = str_labels labels in
        check_extra o
      | _ -> Error (kind ^ " entry missing name/labels"))
    | _ -> Error (kind ^ " entry must be an object")
  in
  let all kind check_extra xs =
    List.fold_left
      (fun acc x -> let* () = acc in check_series kind check_extra x)
      (Ok ()) xs
  in
  let list_member name o =
    match Obs_json.member name o with
    | Some (Obs_json.List xs) -> Ok xs
    | Some _ -> Error (name ^ " must be a list")
    | None -> Error ("missing " ^ name)
  in
  match j with
  | Obs_json.Obj _ -> (
    match Obs_json.member "schema_version" j with
    | Some (Obs_json.Int v) when v = schema_version ->
      let* cs = list_member "counters" j in
      let* gs = list_member "gauges" j in
      let* hs = list_member "histograms" j in
      let* () =
        all "counter"
          (fun o ->
            match Obs_json.member "value" o with
            | Some (Obs_json.Int _) -> Ok ()
            | _ -> Error "counter value must be an integer")
          cs
      in
      let* () =
        all "gauge"
          (fun o ->
            match Obs_json.member "value" o with
            | Some (Obs_json.Float _ | Obs_json.Int _ | Obs_json.Null) -> Ok ()
            | _ -> Error "gauge value must be a number")
          gs
      in
      all "histogram"
        (fun o ->
          match
            (Obs_json.member "count" o, Obs_json.member "sum" o,
             Obs_json.member "buckets" o)
          with
          | Some (Obs_json.Int _),
            Some (Obs_json.Float _ | Obs_json.Int _ | Obs_json.Null),
            Some (Obs_json.List bs) ->
            if
              List.for_all
                (fun b ->
                  match (Obs_json.member "le" b, Obs_json.member "count" b) with
                  | Some (Obs_json.Float _ | Obs_json.Int _ | Obs_json.Str "+Inf"),
                    Some (Obs_json.Int _) ->
                    true
                  | _ -> false)
                bs
            then Ok ()
            else Error "histogram bucket must have le + integer count"
          | _ -> Error "histogram entry missing count/sum/buckets")
        hs
    | Some (Obs_json.Int v) ->
      Error (Printf.sprintf "unsupported schema_version %d (want %d)" v schema_version)
    | _ -> Error "missing schema_version")
  | _ -> Error "metrics snapshot must be an object"
