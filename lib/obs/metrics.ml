(** Typed metrics registry: counters, gauges and histograms with labels,
    and one stable JSON snapshot schema (see {!schema_version}).

    This is the single sink that unifies the instrumentation that used to
    live in three ad-hoc shapes (the pass manager's timing/counter
    hashtables, the data-flow solver's mutable counter record, the
    interpreter's counter record): the pass manager and the JIT driver
    write per-pass and per-compile series into a registry, the
    interpreter can dump its dynamic counters into one, and the benchmark
    harness merges {!snapshot} into its JSON report.

    An instrument is identified by its name plus its label set; asking
    for the same (name, labels) twice returns the same instrument, and
    asking with a different type is a programming error
    ([Invalid_argument]).

    Domain safety: a registry may be shared across domains (the Svc pool
    and the tiered manager both do).  Counters and gauges are [Atomic.t]
    cells; histogram observation and registry structure (find-or-add,
    snapshot) are mutex-guarded. *)

type labels = (string * string) list

type instrument =
  | Icounter of int Atomic.t
  | Igauge of float Atomic.t
  | Ihistogram of histogram_data

and histogram_data = {
  buckets : float array;        (** upper bounds, ascending; +inf implicit *)
  bucket_counts : int array;    (** length = Array.length buckets + 1 *)
  mutable hcount : int;
  mutable hsum : float;
  hm : Mutex.t;                 (** guards the three mutable fields above *)
}

type t = {
  tbl : (string * labels, instrument) Hashtbl.t;
  mutable order : (string * labels) list;  (** registration order, reversed *)
  rm : Mutex.t;                 (** guards [tbl] and [order] *)
}

type counter = int Atomic.t
type gauge = float Atomic.t
type histogram = histogram_data

let schema_version = 1

let create () : t = { tbl = Hashtbl.create 64; order = []; rm = Mutex.create () }

(** A process-wide default registry, for callers that do not thread their
    own. *)
let global : t = create ()

let norm_labels (labels : labels) : labels =
  List.sort_uniq compare labels

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let find_or_add (r : t) name labels (mk : unit -> instrument) : instrument =
  let key = (name, norm_labels labels) in
  with_lock r.rm (fun () ->
      match Hashtbl.find_opt r.tbl key with
      | Some i -> i
      | None ->
        let i = mk () in
        Hashtbl.replace r.tbl key i;
        r.order <- key :: r.order;
        i)

let kind_error name want =
  invalid_arg
    (Printf.sprintf "Metrics: %s already registered with a different type (wanted %s)"
       name want)

let counter (r : t) ?(labels = []) name : counter =
  match find_or_add r name labels (fun () -> Icounter (Atomic.make 0)) with
  | Icounter c -> c
  | Igauge _ | Ihistogram _ -> kind_error name "counter"

let inc (c : counter) n = ignore (Atomic.fetch_and_add c n)
let counter_value (c : counter) = Atomic.get c

let gauge (r : t) ?(labels = []) name : gauge =
  match find_or_add r name labels (fun () -> Igauge (Atomic.make 0.)) with
  | Igauge g -> g
  | Icounter _ | Ihistogram _ -> kind_error name "gauge"

let set (g : gauge) v = Atomic.set g v

let rec add (g : gauge) v =
  let cur = Atomic.get g in
  if not (Atomic.compare_and_set g cur (cur +. v)) then add g v

let gauge_value (g : gauge) = Atomic.get g

(** Default histogram buckets: wall-clock seconds from 1 microsecond up
    to ~10 s, factor-of-~3 spacing. *)
let default_buckets =
  [| 1e-6; 3e-6; 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3;
     1.; 3.; 10. |]

let histogram (r : t) ?(labels = []) ?(buckets = default_buckets) name :
    histogram =
  let mk () =
    let b = Array.copy buckets in
    Array.sort compare b;
    Ihistogram
      { buckets = b; bucket_counts = Array.make (Array.length b + 1) 0;
        hcount = 0; hsum = 0.; hm = Mutex.create () }
  in
  match find_or_add r name labels mk with
  | Ihistogram h -> h
  | Icounter _ | Igauge _ -> kind_error name "histogram"

let observe (h : histogram) v =
  let nb = Array.length h.buckets in
  let rec slot k = if k >= nb || v <= h.buckets.(k) then k else slot (k + 1) in
  let k = slot 0 in
  Mutex.lock h.hm;
  h.bucket_counts.(k) <- h.bucket_counts.(k) + 1;
  h.hcount <- h.hcount + 1;
  h.hsum <- h.hsum +. v;
  Mutex.unlock h.hm

let histogram_count (h : histogram) = with_lock h.hm (fun () -> h.hcount)
let histogram_sum (h : histogram) = with_lock h.hm (fun () -> h.hsum)

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)
(* ------------------------------------------------------------------ *)

let labels_json (labels : labels) : Obs_json.t =
  Obs_json.Obj (List.map (fun (k, v) -> (k, Obs_json.Str v)) labels)

let snapshot (r : t) : Obs_json.t =
  (* deterministic order: sorted by (name, labels).  Holds the registry
     lock for the traversal and each histogram's lock while copying its
     cells, so the per-instrument values are internally consistent. *)
  let keys, instruments =
    with_lock r.rm (fun () ->
        let keys = List.sort compare (List.rev r.order) in
        (keys, List.map (fun key -> Hashtbl.find r.tbl key) keys))
  in
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter2
    (fun (name, labels) instrument ->
      let base = [ ("name", Obs_json.Str name); ("labels", labels_json labels) ] in
      match instrument with
      | Icounter c ->
        counters :=
          Obs_json.Obj (base @ [ ("value", Obs_json.Int (Atomic.get c)) ])
          :: !counters
      | Igauge g ->
        gauges :=
          Obs_json.Obj (base @ [ ("value", Obs_json.Float (Atomic.get g)) ])
          :: !gauges
      | Ihistogram h ->
        let bucket_counts, hcount, hsum =
          with_lock h.hm (fun () ->
              (Array.copy h.bucket_counts, h.hcount, h.hsum))
        in
        let bucket k le =
          Obs_json.Obj [ ("le", le); ("count", Obs_json.Int bucket_counts.(k)) ]
        in
        let buckets =
          List.init (Array.length h.buckets) (fun k ->
              bucket k (Obs_json.Float h.buckets.(k)))
          @ [ bucket (Array.length h.buckets) (Obs_json.Str "+Inf") ]
        in
        histograms :=
          Obs_json.Obj
            (base
            @ [
                ("count", Obs_json.Int hcount);
                ("sum", Obs_json.Float hsum);
                ("buckets", Obs_json.List buckets);
              ])
          :: !histograms)
    keys instruments;
  Obs_json.Obj
    [
      ("schema_version", Obs_json.Int schema_version);
      ("counters", Obs_json.List (List.rev !counters));
      ("gauges", Obs_json.List (List.rev !gauges));
      ("histograms", Obs_json.List (List.rev !histograms));
    ]

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)
(* ------------------------------------------------------------------ *)

let validate (j : Obs_json.t) : (unit, string) result =
  let ( let* ) r f = Result.bind r f in
  let str_labels = function
    | Obs_json.Obj kvs ->
      if List.for_all (function _, Obs_json.Str _ -> true | _ -> false) kvs
      then Ok ()
      else Error "labels values must be strings"
    | _ -> Error "labels must be an object"
  in
  let check_series kind check_extra = function
    | Obs_json.Obj _ as o -> (
      match (Obs_json.member "name" o, Obs_json.member "labels" o) with
      | Some (Obs_json.Str _), Some labels ->
        let* () = str_labels labels in
        check_extra o
      | _ -> Error (kind ^ " entry missing name/labels"))
    | _ -> Error (kind ^ " entry must be an object")
  in
  let all kind check_extra xs =
    List.fold_left
      (fun acc x -> let* () = acc in check_series kind check_extra x)
      (Ok ()) xs
  in
  let list_member name o =
    match Obs_json.member name o with
    | Some (Obs_json.List xs) -> Ok xs
    | Some _ -> Error (name ^ " must be a list")
    | None -> Error ("missing " ^ name)
  in
  match j with
  | Obs_json.Obj _ -> (
    match Obs_json.member "schema_version" j with
    | Some (Obs_json.Int v) when v = schema_version ->
      let* cs = list_member "counters" j in
      let* gs = list_member "gauges" j in
      let* hs = list_member "histograms" j in
      let* () =
        all "counter"
          (fun o ->
            match Obs_json.member "value" o with
            | Some (Obs_json.Int _) -> Ok ()
            | _ -> Error "counter value must be an integer")
          cs
      in
      let* () =
        all "gauge"
          (fun o ->
            match Obs_json.member "value" o with
            | Some (Obs_json.Float _ | Obs_json.Int _ | Obs_json.Null) -> Ok ()
            | _ -> Error "gauge value must be a number")
          gs
      in
      all "histogram"
        (fun o ->
          match
            (Obs_json.member "count" o, Obs_json.member "sum" o,
             Obs_json.member "buckets" o)
          with
          | Some (Obs_json.Int _),
            Some (Obs_json.Float _ | Obs_json.Int _ | Obs_json.Null),
            Some (Obs_json.List bs) ->
            if
              List.for_all
                (fun b ->
                  match (Obs_json.member "le" b, Obs_json.member "count" b) with
                  | Some (Obs_json.Float _ | Obs_json.Int _ | Obs_json.Str "+Inf"),
                    Some (Obs_json.Int _) ->
                    true
                  | _ -> false)
                bs
            then Ok ()
            else Error "histogram bucket must have le + integer count"
          | _ -> Error "histogram entry missing count/sum/buckets")
        hs
    | Some (Obs_json.Int v) ->
      Error (Printf.sprintf "unsupported schema_version %d (want %d)" v schema_version)
    | _ -> Error "missing schema_version")
  | _ -> Error "metrics snapshot must be an object"
