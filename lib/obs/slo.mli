(** Service-level objectives over the {!Metrics} registry, evaluated
    with multi-window burn rates — the status server's [/healthz]
    verdict and the ops-facing half of the per-tenant attribution work.

    An objective declares a target fraction of {e good events}:

    - {!latency}: an observation of histogram [metric] is good when it
      is at or below [threshold] seconds ("p99 compile latency ≤ 50ms"
      is [target = 0.99, threshold = 0.05]);
    - {!availability}: good/bad counts come from two counters
      (availability = 1 − shed fraction uses
      [good = svc_requests_completed_total],
      [bad = svc_requests_shed_total]).

    Both read {e across every label set} of the named instrument
    ({!Metrics.counter_total_any} / {!Metrics.histogram_merged_any}), so
    per-tenant families aggregate into one service-level objective.

    {2 Burn rates}

    The {e burn rate} of a window is the error fraction observed in that
    window divided by the objective's error budget [(1 − target)]: burn
    1.0 spends the budget exactly; burn 14.4 over 5 minutes is the
    classic page-now threshold.  A window with no traffic burns 0.
    Classification requires {e both} windows to cross a threshold —
    the long window proves the problem is sustained, the short window
    proves it is still happening:

    - [Failing] when short {e and} long burn ≥ [failing_burn] (14.4);
    - [Degraded] when short {e and} long burn ≥ [degraded_burn] (1.0);
    - [Healthy] otherwise.

    {!tick} samples cumulative counts (call it periodically — the status
    server does, once per accept-loop tick); windows are deltas between
    samples, with the sample exactly on a window edge serving as the
    baseline (its events are outside the window).  See DESIGN.md §15. *)

type kind =
  | Latency of { metric : string; threshold : float }
  | Availability of { good : string; bad : string }

type objective = { o_name : string; o_kind : kind; o_target : float }

val latency :
  name:string -> metric:string -> threshold:float -> target:float -> objective
(** @raise Invalid_argument unless [0 <= target <= 1]. *)

val availability :
  name:string -> good:string -> bad:string -> target:float -> objective
(** @raise Invalid_argument unless [0 <= target <= 1]. *)

type status = Healthy | Degraded | Failing

val status_name : status -> string

type t
(** An evaluator: objectives plus their sample history.  Domain-safe
    ({!tick} and {!evaluate} serialize on an internal mutex). *)

val create :
  ?short_window:float ->
  ?long_window:float ->
  ?degraded_burn:float ->
  ?failing_burn:float ->
  Metrics.t ->
  objective list ->
  t
(** Defaults: 300s short window, 3600s long window, degraded at burn
    1.0, failing at burn 14.4.
    @raise Invalid_argument unless [0 < short_window <= long_window]. *)

val objectives : t -> objective list

val tick : ?now:float -> t -> unit
(** Sample every objective's cumulative good/bad counts at [now]
    (default [Unix.gettimeofday ()]).  History older than the long
    window is pruned, always retaining one sample at-or-beyond the edge
    so edge deltas stay exact.  [?now] exists for deterministic tests —
    pass monotonically non-decreasing values. *)

type report = {
  r_name : string;
  r_target : float;
  r_kind : kind;
  r_status : status;
  r_short_burn : float;
  r_long_burn : float;
  r_short_total : int;  (** events inside the short window *)
  r_long_total : int;   (** events inside the long window *)
}

val evaluate : ?now:float -> t -> report list
(** Burn rates and classification per objective, from the recorded
    samples (does not itself sample — {!tick} first). *)

val schema : string
(** ["nullelim-slo/1"]. *)

val to_json : ?now:float -> t -> Obs_json.t
(** [{"schema":"nullelim-slo/1","schema_version":1,"short_window":…,
      "long_window":…,"degraded_burn":…,"failing_burn":…,
      "status":worst-of-all,"objectives":[{"name","kind","target",
      kind-specific members,"status","short_burn","long_burn",
      "short_total","long_total"}…]}].  Infinite burns (target = 1
    with any error) serialize as [1e18]. *)

val validate : Obs_json.t -> (unit, string) result
(** Structural validation of a {!to_json} document. *)
