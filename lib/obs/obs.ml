(** Umbrella module for the telemetry layer: trace spans, leveled
    logging, the metrics registry and the per-check decision log.
    Client code says [Obs.span "phase1" f], [Obs.Log.debug ...],
    [Obs.Metrics.counter ...], [Obs.Decision.record ...]. *)

module Json = Obs_json
module Log = Log
module Trace = Trace
module Metrics = Metrics
module Decision = Decision
module Profile = Profile

let span = Trace.span
let instant = Trace.instant
