(** Umbrella module for the telemetry layer: trace spans, leveled
    logging, the metrics registry, the flight recorder and the per-check
    decision log.  Client code says [Obs.span "phase1" f],
    [Obs.Log.debug ...], [Obs.Metrics.counter ...],
    [Obs.Recorder.record ...], [Obs.Decision.record ...]. *)

module Json = Obs_json
module Log = Log
module Trace = Trace
module Metrics = Metrics
module Recorder = Recorder
module Decision = Decision
module Profile = Profile

let span = Trace.span
let instant = Trace.instant
