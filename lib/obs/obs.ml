(** Umbrella module for the telemetry layer: trace spans, leveled
    logging, the metrics registry, causal request contexts, the flight
    recorder and its per-request timelines, Prometheus exposition, SLO
    burn rates and the per-check decision log.  Client code says
    [Obs.span "phase1" f], [Obs.Log.debug ...],
    [Obs.Metrics.counter ...], [Obs.Ctx.mint ...],
    [Obs.Recorder.record ...], [Obs.Decision.record ...]. *)

module Json = Obs_json
module Log = Log
module Trace = Trace
module Metrics = Metrics
module Ctx = Ctx
module Recorder = Recorder
module Timeline = Timeline
module Export = Export
module Slo = Slo
module Decision = Decision
module Profile = Profile

let span = Trace.span
let instant = Trace.instant
