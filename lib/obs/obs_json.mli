(** Minimal JSON tree shared by the telemetry layer and the benchmark
    report: emission ([%.12g] floats, non-finite as [null]) and a small
    parser for round-trip and schema-validation tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
val of_string : string -> (t, string) result

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_list : t -> t list option
val equal : t -> t -> bool
