(** Minimal JSON tree shared by the telemetry layer and the benchmark
    report: emission ([%.12g] floats, non-finite as [null]) and a small
    parser for round-trip and schema-validation tests. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no-whitespace) serialization.  Floats print with [%.12g];
    non-finite floats serialize as [null]. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document.  Stricter than the grammar in two
    ways telemetry validation wants: trailing input after the document
    is an error, and an object with a duplicate key is rejected (every
    schema in this repo keys objects uniquely, so a duplicate always
    means a generator bug).  Errors carry a byte offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_list : t -> t list option
val equal : t -> t -> bool
