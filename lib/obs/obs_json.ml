(** Minimal JSON tree shared by the whole telemetry layer: the metrics
    snapshot, the decision log, the Chrome trace writer and the benchmark
    report all emit through it, and the schema-validation smoke tests
    parse back through it.  No external dependency.

    Emission rules (kept bit-compatible with the historical benchmark
    report): floats print with [%.12g]; non-finite floats serialize as
    [null]. *)

type t =
  | Null  (** also what non-finite floats serialize as *)
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)
(* ------------------------------------------------------------------ *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.12g" f)
    else emit b Null
  | Str s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        emit b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b "\":";
        emit b v)
      kvs;
    Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 4096 in
  emit b j;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent; enough for round-trip and validation)   *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char b '"'; advance ()
             | '\\' -> Buffer.add_char b '\\'; advance ()
             | '/' -> Buffer.add_char b '/'; advance ()
             | 'n' -> Buffer.add_char b '\n'; advance ()
             | 't' -> Buffer.add_char b '\t'; advance ()
             | 'r' -> Buffer.add_char b '\r'; advance ()
             | 'b' -> Buffer.add_char b '\b'; advance ()
             | 'f' -> Buffer.add_char b '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "short \\u escape";
               let hex = String.sub s !pos 4 in
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* keep it simple: ASCII raw, the rest as UTF-8 *)
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
        | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) lit then
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec go () =
          items := parse_value () :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); go ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        go ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let items = ref [] in
        let rec go () =
          skip_ws ();
          let k = parse_string () in
          (* every schema in this repo keys objects uniquely, so a
             duplicate is always a generator bug — reject it rather
             than silently shadowing one binding in [member] *)
          if List.mem_assoc k !items then
            fail (Printf.sprintf "duplicate key %S" k);
          skip_ws ();
          expect ':';
          let v = parse_value () in
          items := (k, v) :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); go ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !items)
      end
    | Some ('0' .. '9' | '-') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    | None -> fail "unexpected end of input"
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None

(* JSON has one number type: [Float 1.] emits as "1" and parses back as
   [Int 1], so equality compares numbers by value.  Non-finite floats
   emit as [null] and never round-trip as floats, so NaN cannot reach
   the float comparison. *)
let rec equal (a : t) (b : t) =
  match (a, b) with
  | Int i, Float f | Float f, Int i -> float_of_int i = f
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k, v) (k', v') -> String.equal k k' && equal v v')
         xs ys
  | _ -> a = b
