(** Prometheus text-exposition rendering of a {!Metrics} registry, plus
    a lint for the format — what the status server's [/metrics] endpoint
    serves and what the CI smoke checks it with.

    The registry stores histograms as {e per-bucket} counts; the
    exposition format requires {e cumulative} [_bucket] series ending in
    [le="+Inf"] equal to [_count] — {!render} performs that
    accumulation, and {!lint} rejects text that violates it.  Metric and
    label names are sanitized to the Prometheus charset
    [[a-zA-Z_:][a-zA-Z0-9_:]*]; label values escape backslash,
    double-quote and newline. *)

val render : Metrics.t -> string
(** The whole registry in text exposition format: one [# TYPE] header
    per family, counters as bare samples, gauges likewise, histograms as
    cumulative [_bucket] series plus [_sum] and [_count].  Ordering is
    deterministic (the registry's sorted snapshot order). *)

val content_type : string
(** ["text/plain; version=0.0.4; charset=utf-8"] — the value for the
    HTTP [Content-Type] header when serving {!render} output. *)

val sanitize_name : string -> string
(** Map an arbitrary string into the Prometheus name charset
    (invalid characters become ['_']; a leading digit gains a ['_']
    prefix). *)

val escape_label_value : string -> string
(** Escape a label value for inclusion between double quotes. *)

val lint : string -> (unit, string) result
(** Check a text-exposition document: every non-comment line parses as
    [name{labels} value]; [# TYPE] lines are well-formed; every sample
    belongs to a family declared by a {e preceding} [# TYPE] (directly,
    or via a histogram family's [_bucket]/[_sum]/[_count] suffixes);
    histogram [_bucket] series are cumulative (non-decreasing in file
    order), carry an [le] label, include an [le="+Inf"] bucket, and tie
    out against [_count]; counters are non-negative.  [Error] carries a
    1-based line number where applicable. *)
