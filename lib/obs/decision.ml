(** Per-check optimization decision log.

    Every transformation of a null or bound check records a provenance
    event: which pass, in which function and block, acting on which
    variable, what was done ({!action}) and why ({!justification}).  Each
    event also carries the delta it applies to the program's static
    explicit/implicit null-check counts, so the compile driver's final
    check statistics are {e derivable} from the log: folding
    {!derived_deltas} over a compilation's events and adding the raw
    input counts must reproduce the compiler's [check_stats] exactly —
    the reconciliation the test suite asserts on every registry workload.
    That makes each line of the paper's Table 2/3 reproduction auditable
    check by check.

    Collection is scoped: the JIT driver wraps one compilation in
    {!with_log}; {!record} is a no-op when no collector is installed.
    The pass manager maintains the pass/function context so that
    individual passes only state what happened and why. *)

(** What happened to the check.  The first six actions are the paper's
    transformation vocabulary (Sections 4.1, 4.2, 3.3.1); the last two
    are bookkeeping actions needed so the log stays count-complete under
    the surrounding optimizer (inlining copies checks; unreachable-code
    removal drops them). *)
type action =
  | Eliminated_redundant  (** deleted: target already known non-null *)
  | Moved_backward        (** materialized at an earlier insertion point *)
  | Moved_forward         (** picked up / rematerialized by forward motion *)
  | Converted_implicit    (** became a free hardware-trap check *)
  | Substituted           (** deleted: re-covered later on every path *)
  | Speculated            (** a load was hoisted above this check *)
  | Duplicated            (** copied by inlining *)
  | Dropped_unreachable   (** its block was unreachable *)
  | Deoptimized           (** implicit check re-materialized as explicit
                              after its trap actually fired (tiered
                              recompilation) *)

(** The justifying fact. *)
type justification =
  | Nonnull_dominating       (** dominated by an equivalent check/deref/alloc *)
  | Insertion_earliest       (** phase-1 Earliest(n) insertion point *)
  | Floated                  (** picked up into the phase-2 floating set *)
  | Trap_covered of int option
      (** dereference offset inside the protected trap area *)
  | Trap_not_covered         (** BigOffset / variable index / non-trapping OS *)
  | Side_effect_barrier
  | Overwritten              (** the checked variable was redefined *)
  | Not_anticipated          (** a successor does not accept the floated check *)
  | Covered_later            (** substitutable (Section 4.2.2) *)
  | Available_on_entry       (** bound check available on every path *)
  | Invariant_in_loop        (** bound check hoisted to the preheader *)
  | Speculative_read         (** non-trapping read moved above the check *)
  | Inline_copy of string    (** callee the check was copied from *)
  | Unreachable_code
  | Trap_fired               (** runtime observed a hardware trap at this
                                 site, so the free-until-it-fires bet
                                 lost — re-materialize the explicit check *)

type kind = Kexplicit | Kimplicit | Kbound | Kother

type event = {
  id : int;            (** sequential within one collection scope *)
  pass : string;
  func : string;
  block : int;
  var : int;           (** -1 when no single variable identifies the check *)
  kind : kind;
  action : action;
  just : justification;
  d_explicit : int;    (** delta to the static explicit null-check count *)
  d_implicit : int;    (** delta to the static implicit null-check count *)
  site : int;
      (** provenance id ([Ir.site]) of the check acted on — for insertions
          and duplications, the id of the {e new} check; -1 when unknown *)
  parent : int;
      (** when a fresh site was materialized from an existing check
          (inline copy, phase-2 rematerialization), the originating site;
          -1 otherwise *)
  tier : int;
      (** execution tier of the compilation that recorded the event
          (0 = entry tier, 2 = full pipeline); -1 for untiered
          compilations *)
}

type collector = {
  mutable evs : event list;
  mutable n : int;
  mutable cur_pass : string;
  mutable cur_func : string;
  mutable cur_tier : int;
}

(* Domain-local: each domain of the compile service collects its own
   log, so concurrent compilations never interleave events. *)
let current_key : collector option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = Domain.DLS.get current_key

let active () = !(current ()) <> None

let set_pass name =
  match !(current ()) with Some c -> c.cur_pass <- name | None -> ()

let set_func name =
  match !(current ()) with Some c -> c.cur_func <- name | None -> ()

let set_tier tier =
  match !(current ()) with Some c -> c.cur_tier <- tier | None -> ()

let record ?(d_explicit = 0) ?(d_implicit = 0) ?(block = -1) ?(var = -1)
    ?(site = -1) ?(parent = -1) ~(kind : kind) ~(action : action)
    ~(just : justification) () : unit =
  match !(current ()) with
  | None -> ()
  | Some c ->
    let ev =
      {
        id = c.n;
        pass = c.cur_pass;
        func = c.cur_func;
        block;
        var;
        kind;
        action;
        just;
        d_explicit;
        d_implicit;
        site;
        parent;
        tier = c.cur_tier;
      }
    in
    c.n <- c.n + 1;
    c.evs <- ev :: c.evs

(** Run [f] with a fresh collector installed; returns its result and the
    events in record order.  Re-entrant: a previously installed
    collector is saved and restored. *)
let with_log (f : unit -> 'a) : 'a * event list =
  let cur = current () in
  let saved = !cur in
  let c = { evs = []; n = 0; cur_pass = ""; cur_func = ""; cur_tier = -1 } in
  cur := Some c;
  let restore () = cur := saved in
  match f () with
  | v ->
    restore ();
    (v, List.rev c.evs)
  | exception e ->
    restore ();
    raise e

(** Sum of the static-count deltas: [(d_explicit, d_implicit)]. *)
let derived_deltas (evs : event list) : int * int =
  List.fold_left
    (fun (e, i) ev -> (e + ev.d_explicit, i + ev.d_implicit))
    (0, 0) evs

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let action_to_string = function
  | Eliminated_redundant -> "eliminated-redundant"
  | Moved_backward -> "moved-backward"
  | Moved_forward -> "moved-forward"
  | Converted_implicit -> "converted-implicit"
  | Substituted -> "substituted"
  | Speculated -> "speculated"
  | Duplicated -> "duplicated"
  | Dropped_unreachable -> "dropped-unreachable"
  | Deoptimized -> "deoptimized"

let justification_to_string = function
  | Nonnull_dominating -> "nonnull-dominating"
  | Insertion_earliest -> "insertion-earliest"
  | Floated -> "floated"
  | Trap_covered (Some off) -> Printf.sprintf "trap-covered:%d" off
  | Trap_covered None -> "trap-covered"
  | Trap_not_covered -> "trap-not-covered"
  | Side_effect_barrier -> "side-effect-barrier"
  | Overwritten -> "overwritten"
  | Not_anticipated -> "not-anticipated"
  | Covered_later -> "covered-later"
  | Available_on_entry -> "available-on-entry"
  | Invariant_in_loop -> "invariant-in-loop"
  | Speculative_read -> "speculative-read"
  | Inline_copy callee -> "inline-copy:" ^ callee
  | Unreachable_code -> "unreachable-code"
  | Trap_fired -> "trap-fired"

let kind_to_string = function
  | Kexplicit -> "explicit"
  | Kimplicit -> "implicit"
  | Kbound -> "bound"
  | Kother -> "other"

let event_to_json (ev : event) : Obs_json.t =
  Obs_json.Obj
    [
      ("id", Obs_json.Int ev.id);
      ("pass", Obs_json.Str ev.pass);
      ("func", Obs_json.Str ev.func);
      ("block", Obs_json.Int ev.block);
      ("var", Obs_json.Int ev.var);
      ("kind", Obs_json.Str (kind_to_string ev.kind));
      ("action", Obs_json.Str (action_to_string ev.action));
      ("justification", Obs_json.Str (justification_to_string ev.just));
      ("d_explicit", Obs_json.Int ev.d_explicit);
      ("d_implicit", Obs_json.Int ev.d_implicit);
      ("site", Obs_json.Int ev.site);
      ("parent", Obs_json.Int ev.parent);
      ("tier", Obs_json.Int ev.tier);
    ]

let to_json (evs : event list) : Obs_json.t =
  Obs_json.List (List.map event_to_json evs)

(** Event counts per action, sorted by action name — the one-line summary
    the CLI prints. *)
let summary (evs : event list) : (string * int) list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun ev ->
      let k = action_to_string ev.action in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    evs;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
