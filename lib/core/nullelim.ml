(** Public façade of the null-check-elimination library.

    {b nullelim} reproduces "Effective Null Pointer Check Elimination
    Utilizing Hardware Trap" (Kawahito, Komatsu, Nakatani — ASPLOS 2000).
    The modules below are aliases for the underlying libraries; see
    DESIGN.md for the system inventory and EXPERIMENTS.md for the
    reproduction results.

    Typical use:

    {[
      let prog = (* build with Nullelim.Builder *) ... in
      let arch = Nullelim.Arch.ia32_windows in
      let compiled =
        Nullelim.Compiler.compile Nullelim.Config.new_full ~arch prog
      in
      let result = Nullelim.Interp.run ~arch compiled.program [] in
      Fmt.pr "%a, %d cycles@." Nullelim.Interp.pp_outcome result.outcome
        result.counters.cycles
    ]} *)

(** {1 Intermediate representation} *)

module Ir = Nullelim_ir.Ir
module Builder = Nullelim_ir.Ir_builder
module Ir_pp = Nullelim_ir.Ir_pp
module Ir_validate = Nullelim_ir.Ir_validate

(** {1 Control-flow graph} *)

module Cfg = Nullelim_cfg.Cfg
module Dominance = Nullelim_cfg.Dominance
module Loops = Nullelim_cfg.Loops
module Context = Nullelim_cfg.Context

(** {1 Data-flow framework} *)

module Bitset = Nullelim_dataflow.Bitset
module Solver = Nullelim_dataflow.Solver

(** {1 Analyses} *)

module Nullness = Nullelim_analysis.Nullness
module Liveness = Nullelim_analysis.Liveness

(** {1 Architecture models} *)

module Arch = Nullelim_arch.Arch

(** {1 Optimizations} *)

module Phase1 = Nullelim_opt.Phase1
module Phase2 = Nullelim_opt.Phase2
module Whaley = Nullelim_opt.Whaley
module Naive_trap = Nullelim_opt.Naive_trap
module Boundcheck = Nullelim_opt.Boundcheck
module Scalar_repl = Nullelim_opt.Scalar_repl
module Inline = Nullelim_opt.Inline
module Copyprop = Nullelim_opt.Copyprop
module Simplify_cfg = Nullelim_opt.Simplify_cfg
module Dce = Nullelim_opt.Dce
module Verify = Nullelim_opt.Verify
module Pipeline = Nullelim_opt.Pipeline
module Opt_util = Nullelim_opt.Opt_util

(** {1 Back end} *)

module Regalloc = Nullelim_backend.Regalloc
module Codegen = Nullelim_backend.Codegen
module Emit_c = Nullelim_backend.Emit_c
module Native = Nullelim_backend.Native

(** {1 Virtual machine (simulator)} *)

module Value = Nullelim_vm.Value
module Interp = Nullelim_vm.Interp

(** {1 JIT driver} *)

module Config = Nullelim_jit.Config
module Compiler = Nullelim_jit.Compiler

(** {1 Compile service}

    Parallel batch compilation on a pool of OCaml domains
    ([Svc.compile_all]), a bounded work queue ([Chan]) and a
    content-addressed compiled-code cache with an LRU byte budget
    ([Codecache], keyed by [Svc.job_key]). *)

module Svc = Nullelim_svc.Svc
module Chan = Nullelim_svc.Chan
module Codecache = Nullelim_svc.Codecache
module Status = Nullelim_svc.Status

(** {1 Tiered execution}

    The adaptive recompilation manager: tier-0 instant compiles,
    profile-triggered promotion to the full pipeline on the compile
    pool, and trap-triggered per-site deoptimization ([Tier]). *)

module Tier = Nullelim_tier.Tier

(** {1 Random program generation and differential fuzzing}

    A seeded, deterministic IR program generator ([Gen]), a structural
    shrinker ([Shrink]), the differential oracle set ([Diff]) and the
    [nullelim-fuzz/1] report / [nullelim-corpus/1] corpus-entry formats
    ([Fuzz_report]).  Driven by the [fuzz] CLI command. *)

module Gen = Nullelim_gen.Gen
module Gen_rng = Nullelim_gen.Rng
module Shrink = Nullelim_gen.Shrink
module Diff = Nullelim_gen.Diff
module Fuzz_report = Nullelim_gen.Report

(** {1 Telemetry}

    Trace spans ([Obs.span], Chrome trace-event output via
    [NULLELIM_TRACE=path]), leveled logging ([NULLELIM_LOG=debug]),
    a typed metrics registry with a versioned JSON snapshot, and the
    per-check optimization decision log. *)

module Obs = Nullelim_obs.Obs
module Json = Nullelim_obs.Obs_json
